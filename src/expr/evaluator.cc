#include "expr/evaluator.h"

#include <cmath>

#include "common/string_util.h"

namespace sparkline {

Result<ExprPtr> BindExpression(const ExprPtr& e,
                               const std::vector<Attribute>& input) {
  switch (e->kind()) {
    case ExprKind::kAttributeRef: {
      const auto& attr = static_cast<const AttributeRef&>(*e).attr();
      for (size_t i = 0; i < input.size(); ++i) {
        if (input[i].id == attr.id) {
          return BoundReference::Make(i, attr.type, attr.nullable);
        }
      }
      return Status::PlanError(
          StrCat("cannot bind attribute ", attr.ToString(), " against input"));
    }
    case ExprKind::kUnresolvedAttribute:
    case ExprKind::kStar:
      return Status::PlanError(StrCat("unresolved expression at binding: ",
                                      e->ToString()));
    default:
      break;
  }
  auto children = e->children();
  bool changed = false;
  for (auto& c : children) {
    SL_ASSIGN_OR_RETURN(ExprPtr bound, BindExpression(c, input));
    if (bound != c) {
      c = bound;
      changed = true;
    }
  }
  return changed ? e->WithNewChildren(std::move(children)) : e;
}

namespace {

Result<Value> EvalBinary(const BinaryExpr& e, const Row& row) {
  const BinaryOp op = e.op();
  if (IsLogicalOp(op)) {
    SL_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.left(), row));
    if (op == BinaryOp::kAnd) {
      if (!l.is_null() && !l.bool_value()) return Value::Bool(false);
      SL_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.right(), row));
      if (!r.is_null() && !r.bool_value()) return Value::Bool(false);
      if (l.is_null() || r.is_null()) return Value::Null(DataType::Bool());
      return Value::Bool(true);
    }
    // OR
    if (!l.is_null() && l.bool_value()) return Value::Bool(true);
    SL_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.right(), row));
    if (!r.is_null() && r.bool_value()) return Value::Bool(true);
    if (l.is_null() || r.is_null()) return Value::Null(DataType::Bool());
    return Value::Bool(false);
  }

  SL_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.left(), row));
  SL_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.right(), row));

  if (IsComparisonOp(op)) {
    if (l.is_null() || r.is_null()) return Value::Null(DataType::Bool());
    if (!TypesComparable(l.type(), r.type())) {
      return Status::ExecutionError(
          StrCat("incomparable types in ", e.ToString()));
    }
    int cmp = CompareValues(l, r);
    switch (op) {
      case BinaryOp::kEq:
        return Value::Bool(cmp == 0);
      case BinaryOp::kNeq:
        return Value::Bool(cmp != 0);
      case BinaryOp::kLt:
        return Value::Bool(cmp < 0);
      case BinaryOp::kLe:
        return Value::Bool(cmp <= 0);
      case BinaryOp::kGt:
        return Value::Bool(cmp > 0);
      case BinaryOp::kGe:
        return Value::Bool(cmp >= 0);
      default:
        break;
    }
  }

  // Arithmetic.
  DataType out_type = e.type();
  if (l.is_null() || r.is_null()) return Value::Null(out_type);
  if (!l.type().is_numeric() || !r.type().is_numeric()) {
    return Status::ExecutionError(
        StrCat("arithmetic on non-numeric operands in ", e.ToString()));
  }
  const bool both_int = l.type() == DataType::Int64() &&
                        r.type() == DataType::Int64() && op != BinaryOp::kDiv;
  switch (op) {
    case BinaryOp::kAdd:
      return both_int ? Value::Int64(l.int64_value() + r.int64_value())
                      : Value::Double(l.ToDouble() + r.ToDouble());
    case BinaryOp::kSub:
      return both_int ? Value::Int64(l.int64_value() - r.int64_value())
                      : Value::Double(l.ToDouble() - r.ToDouble());
    case BinaryOp::kMul:
      return both_int ? Value::Int64(l.int64_value() * r.int64_value())
                      : Value::Double(l.ToDouble() * r.ToDouble());
    case BinaryOp::kDiv: {
      double rv = r.ToDouble();
      if (rv == 0.0) return Value::Null(DataType::Double());
      return Value::Double(l.ToDouble() / rv);
    }
    case BinaryOp::kMod: {
      if (l.type() == DataType::Int64() && r.type() == DataType::Int64()) {
        if (r.int64_value() == 0) return Value::Null(DataType::Int64());
        return Value::Int64(l.int64_value() % r.int64_value());
      }
      double rv = r.ToDouble();
      if (rv == 0.0) return Value::Null(DataType::Double());
      return Value::Double(std::fmod(l.ToDouble(), rv));
    }
    default:
      break;
  }
  return Status::Internal(StrCat("unhandled binary op in ", e.ToString()));
}

Result<Value> EvalFunction(const FunctionCall& e, const Row& row) {
  if (!e.fn().has_value()) {
    return Status::ExecutionError(StrCat("unresolved function ", e.name()));
  }
  std::vector<Value> args;
  args.reserve(e.args().size());
  for (const auto& a : e.args()) {
    SL_ASSIGN_OR_RETURN(Value v, EvalExpr(*a, row));
    args.push_back(std::move(v));
  }
  const DataType out = e.type();
  switch (*e.fn()) {
    case BuiltinFn::kIfNull:
    case BuiltinFn::kCoalesce: {
      for (const auto& v : args) {
        if (!v.is_null()) return v.CastTo(out);
      }
      return Value::Null(out);
    }
    case BuiltinFn::kAbs: {
      if (args[0].is_null()) return Value::Null(out);
      if (args[0].type() == DataType::Int64()) {
        return Value::Int64(std::llabs(args[0].int64_value()));
      }
      return Value::Double(std::fabs(args[0].ToDouble()));
    }
    case BuiltinFn::kLeast:
    case BuiltinFn::kGreatest: {
      // Spark semantics: nulls are skipped; null only if all args are null.
      const bool greatest = *e.fn() == BuiltinFn::kGreatest;
      Value best = Value::Null(out);
      for (const auto& v : args) {
        if (v.is_null()) continue;
        if (best.is_null()) {
          best = v;
          continue;
        }
        int cmp = CompareValues(v, best);
        if ((greatest && cmp > 0) || (!greatest && cmp < 0)) best = v;
      }
      if (best.is_null()) return best;
      return best.CastTo(out);
    }
    case BuiltinFn::kRound: {
      if (args[0].is_null()) return Value::Null(DataType::Double());
      double digits = args.size() > 1 && !args[1].is_null()
                          ? args[1].ToDouble()
                          : 0.0;
      double scale = std::pow(10.0, digits);
      return Value::Double(std::round(args[0].ToDouble() * scale) / scale);
    }
  }
  return Status::Internal(StrCat("unhandled function ", e.name()));
}

}  // namespace

Result<Value> EvalExpr(const Expression& e, const Row& row) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const Literal&>(e).value();
    case ExprKind::kBoundReference: {
      const auto& ref = static_cast<const BoundReference&>(e);
      if (ref.ordinal() >= row.size()) {
        return Status::Internal(
            StrCat("bound ordinal ", ref.ordinal(), " out of range (row has ",
                   row.size(), " columns)"));
      }
      return row[ref.ordinal()];
    }
    case ExprKind::kAlias:
      return EvalExpr(*static_cast<const Alias&>(e).child(), row);
    case ExprKind::kCast: {
      const auto& cast = static_cast<const Cast&>(e);
      SL_ASSIGN_OR_RETURN(Value v, EvalExpr(*cast.child(), row));
      return v.CastTo(cast.type());
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      SL_ASSIGN_OR_RETURN(Value v, EvalExpr(*u.child(), row));
      switch (u.op()) {
        case UnaryOp::kNot:
          if (v.is_null()) return Value::Null(DataType::Bool());
          return Value::Bool(!v.bool_value());
        case UnaryOp::kNegate:
          if (v.is_null()) return v;
          if (v.type() == DataType::Int64()) {
            return Value::Int64(-v.int64_value());
          }
          return Value::Double(-v.ToDouble());
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!v.is_null());
      }
      break;
    }
    case ExprKind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr&>(e), row);
    case ExprKind::kFunctionCall:
      return EvalFunction(static_cast<const FunctionCall&>(e), row);
    case ExprKind::kSkylineDimension:
      return EvalExpr(*static_cast<const SkylineDimension&>(e).child(), row);
    default:
      break;
  }
  return Status::Internal(
      StrCat("expression not evaluable row-at-a-time: ", e.ToString()));
}

Result<bool> EvalPredicate(const Expression& e, const Row& row) {
  SL_ASSIGN_OR_RETURN(Value v, EvalExpr(e, row));
  if (v.is_null()) return false;
  if (v.type() != DataType::Bool()) {
    return Status::ExecutionError(
        StrCat("predicate is not boolean: ", e.ToString()));
  }
  return v.bool_value();
}

bool IsConstantExpr(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kAttributeRef:
    case ExprKind::kBoundReference:
    case ExprKind::kUnresolvedAttribute:
    case ExprKind::kStar:
    case ExprKind::kAggregate:
    case ExprKind::kExistsSubquery:
    case ExprKind::kScalarSubquery:
    case ExprKind::kOuterRef:
      return false;
    default:
      break;
  }
  for (const auto& c : e->children()) {
    if (!IsConstantExpr(c)) return false;
  }
  return true;
}

Result<Value> EvalConstant(const ExprPtr& e) {
  Row empty;
  return EvalExpr(*e, empty);
}

}  // namespace sparkline
