// Row-at-a-time expression binding and evaluation with SQL semantics
// (three-valued logic, null propagation, numeric widening).
#pragma once

#include "expr/expression.h"

namespace sparkline {

/// \brief Rewrites AttributeRefs into ordinal BoundReferences against the
/// given input attributes (matched by ExprId). Fails on unbound references.
Result<ExprPtr> BindExpression(const ExprPtr& e,
                               const std::vector<Attribute>& input);

/// \brief Evaluates a bound expression against a row.
///
/// SQL semantics: comparisons/arithmetic with NULL yield NULL; AND/OR follow
/// three-valued logic; division by zero yields NULL (Spark behaviour).
Result<Value> EvalExpr(const Expression& e, const Row& row);

/// \brief Evaluates a bound predicate; returns true only for non-NULL TRUE.
Result<bool> EvalPredicate(const Expression& e, const Row& row);

/// \brief True if the expression contains no references, subqueries or
/// aggregates, i.e. can be folded to a literal.
bool IsConstantExpr(const ExprPtr& e);

/// \brief Evaluates a constant expression (IsConstantExpr must hold).
Result<Value> EvalConstant(const ExprPtr& e);

}  // namespace sparkline
