#include "expr/expression.h"

#include <atomic>

#include "common/string_util.h"

namespace sparkline {

ExprId NextExprId() {
  static std::atomic<ExprId> next{1};
  return next.fetch_add(1);
}

ExprPtr Attribute::ToRef() const { return AttributeRef::Make(*this); }

std::string Attribute::ToString() const {
  std::string out;
  if (!qualifier.empty()) out += qualifier + ".";
  out += name;
  out += "#" + std::to_string(id);
  return out;
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNeq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmeticOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

bool IsLogicalOp(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNeq:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      return "count";
    case AggFn::kSum:
      return "sum";
    case AggFn::kMin:
      return "min";
    case AggFn::kMax:
      return "max";
    case AggFn::kAvg:
      return "avg";
  }
  return "?";
}

const char* SkylineGoalName(SkylineGoal goal) {
  switch (goal) {
    case SkylineGoal::kMin:
      return "MIN";
    case SkylineGoal::kMax:
      return "MAX";
    case SkylineGoal::kDiff:
      return "DIFF";
  }
  return "?";
}

bool Expression::resolved() const {
  for (const auto& c : children()) {
    if (!c->resolved()) return false;
  }
  return true;
}

bool Expression::ContainsAggregate() const {
  if (kind() == ExprKind::kAggregate) return true;
  for (const auto& c : children()) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

ExprPtr Expression::Transform(const ExprPtr& e,
                              const std::function<ExprPtr(const ExprPtr&)>& fn) {
  auto children = e->children();
  bool changed = false;
  for (auto& c : children) {
    ExprPtr nc = Transform(c, fn);
    if (nc != c) {
      c = nc;
      changed = true;
    }
  }
  ExprPtr base = changed ? e->WithNewChildren(std::move(children)) : e;
  return fn(base);
}

void Expression::Foreach(const ExprPtr& e,
                         const std::function<void(const ExprPtr&)>& fn) {
  fn(e);
  for (const auto& c : e->children()) Foreach(c, fn);
}

std::string Literal::ToString() const {
  if (!value_.is_null() && value_.type() == DataType::String()) {
    return StrCat("'", value_.ToString(), "'");
  }
  return value_.ToString();
}

std::string UnresolvedAttribute::ToString() const {
  return StrCat("'", JoinStrings(parts_, "."));
}

std::string BoundReference::ToString() const {
  return StrCat("input[", ordinal_, "]");
}

std::string Alias::ToString() const {
  return StrCat(child_->ToString(), " AS ", name_, "#", id_);
}

DataType BinaryExpr::type() const {
  if (IsArithmeticOp(op_)) {
    return CommonType(left_->type(), right_->type());
  }
  return DataType::Bool();
}

std::string BinaryExpr::ToString() const {
  return StrCat("(", left_->ToString(), " ", BinaryOpSymbol(op_), " ",
                right_->ToString(), ")");
}

std::string UnaryExpr::ToString() const {
  switch (op_) {
    case UnaryOp::kNot:
      return StrCat("NOT ", child_->ToString());
    case UnaryOp::kNegate:
      return StrCat("(-", child_->ToString(), ")");
    case UnaryOp::kIsNull:
      return StrCat(child_->ToString(), " IS NULL");
    case UnaryOp::kIsNotNull:
      return StrCat(child_->ToString(), " IS NOT NULL");
  }
  return "?";
}

std::string Cast::ToString() const {
  return StrCat("CAST(", child_->ToString(), " AS ", target_.ToString(), ")");
}

DataType FunctionCall::type() const {
  if (!fn_.has_value() || args_.empty()) return DataType::Int64();
  switch (*fn_) {
    case BuiltinFn::kIfNull:
    case BuiltinFn::kCoalesce:
    case BuiltinFn::kLeast:
    case BuiltinFn::kGreatest: {
      DataType t = args_[0]->type();
      for (size_t i = 1; i < args_.size(); ++i) {
        if (TypesComparable(t, args_[i]->type())) {
          t = CommonType(t, args_[i]->type());
        }
      }
      return t;
    }
    case BuiltinFn::kAbs:
      return args_[0]->type();
    case BuiltinFn::kRound:
      return DataType::Double();
  }
  return DataType::Int64();
}

bool FunctionCall::nullable() const {
  if (fn_.has_value() &&
      (*fn_ == BuiltinFn::kIfNull || *fn_ == BuiltinFn::kCoalesce)) {
    // Nullable only if every argument is nullable.
    for (const auto& a : args_) {
      if (!a->nullable()) return false;
    }
    return true;
  }
  for (const auto& a : args_) {
    if (a->nullable()) return true;
  }
  return false;
}

bool FunctionCall::resolved() const {
  if (!fn_.has_value()) return false;
  return Expression::resolved();
}

std::string FunctionCall::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args_.size());
  for (const auto& a : args_) parts.push_back(a->ToString());
  return StrCat(name_, "(", JoinStrings(parts, ", "), ")");
}

DataType AggregateExpr::type() const {
  switch (fn_) {
    case AggFn::kCountStar:
    case AggFn::kCount:
      return DataType::Int64();
    case AggFn::kAvg:
      return DataType::Double();
    case AggFn::kSum:
    case AggFn::kMin:
    case AggFn::kMax:
      return child_ != nullptr ? child_->type() : DataType::Int64();
  }
  return DataType::Int64();
}

std::string AggregateExpr::ToString() const {
  if (fn_ == AggFn::kCountStar) return "count(*)";
  return StrCat(AggFnName(fn_), "(", distinct_ ? "DISTINCT " : "",
                child_->ToString(), ")");
}

std::string SkylineDimension::ToString() const {
  return StrCat(child_->ToString(), " ", SkylineGoalName(goal_));
}

std::string ExistsSubquery::ToString() const {
  return StrCat(negated_ ? "NOT " : "", "EXISTS(<subquery>)");
}

std::string ScalarSubquery::ToString() const { return "scalar-subquery()"; }

std::string OuterRef::ToString() const {
  return StrCat("outer(", inner_->ToString(), ")");
}

std::string Star::ToString() const {
  return qualifier_.empty() ? "*" : StrCat(qualifier_, ".*");
}

std::string SortOrder::ToString() const {
  return StrCat(expr->ToString(), ascending ? " ASC" : " DESC",
                nulls_first ? "" : " NULLS LAST");
}

std::vector<Attribute> CollectAttributes(const ExprPtr& e) {
  std::vector<Attribute> out;
  Expression::Foreach(e, [&](const ExprPtr& node) {
    if (node->kind() == ExprKind::kAttributeRef) {
      out.push_back(static_cast<const AttributeRef&>(*node).attr());
    }
  });
  return out;
}

bool ContainsOuterRef(const ExprPtr& e) {
  bool found = false;
  Expression::Foreach(e, [&](const ExprPtr& node) {
    if (node->kind() == ExprKind::kOuterRef) found = true;
  });
  return found;
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& e) {
  std::vector<ExprPtr> out;
  if (e == nullptr) return out;
  if (e->kind() == ExprKind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(*e);
    if (bin.op() == BinaryOp::kAnd) {
      auto l = SplitConjuncts(bin.left());
      auto r = SplitConjuncts(bin.right());
      out.insert(out.end(), l.begin(), l.end());
      out.insert(out.end(), r.begin(), r.end());
      return out;
    }
  }
  out.push_back(e);
  return out;
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out = nullptr;
  for (const auto& c : conjuncts) {
    out = out == nullptr ? c : BinaryExpr::Make(BinaryOp::kAnd, out, c);
  }
  return out;
}

}  // namespace sparkline
