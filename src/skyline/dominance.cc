#include "skyline/dominance.h"

#include "common/string_util.h"

namespace sparkline {
namespace skyline {

Dominance CompareRows(const Row& left, const Row& right,
                      const std::vector<BoundDimension>& dims,
                      NullSemantics nulls) {
  bool left_better = false;
  bool right_better = false;
  for (const auto& d : dims) {
    const Value& l = left[d.ordinal];
    const Value& r = right[d.ordinal];
    if (nulls == NullSemantics::kIncomplete) {
      // Restrict the comparison to dimensions where both are non-null.
      if (l.is_null() || r.is_null()) continue;
    }
    SL_DCHECK(!l.is_null() && !r.is_null())
        << "null skyline value under complete semantics";
    const int cmp = CompareValues(l, r);
    if (cmp == 0) continue;
    switch (d.goal) {
      case SkylineGoal::kDiff:
        // Any difference in a DIFF dimension makes the tuples incomparable.
        return Dominance::kIncomparable;
      case SkylineGoal::kMin:
        if (cmp < 0) {
          left_better = true;
        } else {
          right_better = true;
        }
        break;
      case SkylineGoal::kMax:
        if (cmp > 0) {
          left_better = true;
        } else {
          right_better = true;
        }
        break;
    }
    if (left_better && right_better) return Dominance::kIncomparable;
  }
  if (left_better) return Dominance::kLeftDominates;
  if (right_better) return Dominance::kRightDominates;
  return Dominance::kEqual;
}

uint32_t NullBitmap(const Row& row, const std::vector<BoundDimension>& dims) {
  SL_DCHECK(dims.size() <= 32) << "at most 32 skyline dimensions supported";
  uint32_t bitmap = 0;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (row[dims[i].ordinal].is_null()) bitmap |= (1u << i);
  }
  return bitmap;
}

Status CheckDimensionLimit(const std::vector<BoundDimension>& dims) {
  if (dims.size() > 32) {
    return Status::Invalid(StrCat("at most 32 skyline dimensions supported, got ",
                                  dims.size()));
  }
  return Status::OK();
}

}  // namespace skyline
}  // namespace sparkline
