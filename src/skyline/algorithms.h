// The skyline algorithms (paper sections 5.6, 5.7 and Appendix A).
//
// All functions are deterministic, allocation-conscious and usable standalone
// (the physical operators are thin wrappers). Cancellation is cooperative via
// an optional deadline, which implements the paper's benchmark timeouts.
#pragma once

#include <functional>
#include <vector>

#include "common/result.h"
#include "skyline/dominance.h"

namespace sparkline {
namespace skyline {

/// \brief Options shared by all skyline algorithms.
struct SkylineOptions {
  /// SKYLINE OF DISTINCT: among tuples equal in all skyline dimensions,
  /// keep exactly one (the first encountered).
  bool distinct = false;
  /// Complete (Definition 3.1) vs. incomplete (null-restricted) dominance.
  NullSemantics nulls = NullSemantics::kComplete;
  /// If non-null, incremented once per dominance test.
  DominanceCounter* counter = nullptr;
  /// Monotonic-clock deadline in nanoseconds (0 = none); algorithms return
  /// Status::Timeout soon after passing it.
  int64_t deadline_nanos = 0;
};

/// \brief Block-Nested-Loop skyline (Börzsönyi et al., adapted in paper
/// section 5.6): maintains a window of incomparable tuples; correctness
/// relies on the transitivity of dominance.
///
/// With NullSemantics::kIncomplete the input must be *bitmap-uniform* (all
/// rows null in the same dimensions, e.g. one partition produced by
/// PartitionByNullBitmap) — within such a partition transitivity holds and
/// BNL stays correct (paper section 5.7).
Result<std::vector<Row>> BlockNestedLoop(const std::vector<Row>& input,
                                         const std::vector<BoundDimension>& dims,
                                         const SkylineOptions& options);

/// \brief Global skyline for (potentially) incomplete data: compares all
/// pairs and only *flags* dominated tuples, deleting them after the last
/// comparison. Deferred deletion is what makes cyclic dominance safe
/// (paper section 5.7 / Appendix A).
Result<std::vector<Row>> AllPairsIncomplete(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims,
    const SkylineOptions& options);

/// \brief Sort-Filter-Skyline (SFS), the presorting family the paper lists
/// as future work (section 7). Requires complete data and numeric
/// dimensions; falls back to BlockNestedLoop otherwise. After sorting by a
/// monotone score, no tuple can be dominated by a later one, so the window
/// only grows and every window member is final.
Result<std::vector<Row>> SortFilterSkyline(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims,
    const SkylineOptions& options);

/// \brief Grid-based skyline with cell-level pruning (Tang et al., paper
/// section 2): rows are bucketed into a uniform grid over the observed
/// value ranges (bucket order flipped for MAX dimensions so lower indices
/// are always better); a non-empty cell strictly below another cell in
/// *every* dimension eliminates that cell wholesale, without per-tuple
/// dominance tests. Survivors run through BlockNestedLoop. Complete,
/// numeric data only; falls back to BNL otherwise.
Result<std::vector<Row>> GridFilterSkyline(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims,
    const SkylineOptions& options);

/// \brief The *incorrect* global algorithm of Gulzar et al. [20], kept as an
/// executable counterexample: it deletes dominated tuples eagerly while
/// scanning clusters, so cyclic dominance chains leak tuples into the result
/// (paper Appendix A). Never used by the engine.
std::vector<Row> FlawedGulzarGlobal(const std::vector<Row>& input,
                                    const std::vector<BoundDimension>& dims);

/// \brief Quadratic reference oracle implementing the skyline definition
/// verbatim (used by tests and as the last-resort algorithm).
std::vector<Row> BruteForceSkyline(const std::vector<Row>& input,
                                   const std::vector<BoundDimension>& dims,
                                   const SkylineOptions& options);

/// \brief Groups rows by their null bitmap (paper section 5.7). The result
/// preserves input order within each group.
std::vector<std::vector<Row>> PartitionByNullBitmap(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims);

/// \brief The incomplete local-stage contract (paper section 5.7): BNL is
/// only sound within a bitmap-uniform group, so partition by null bitmap,
/// run one BNL per group, and concatenate (in ascending bitmap order).
/// Shared by the row and columnar execution paths.
Result<std::vector<Row>> BitmapGroupedBnl(const std::vector<Row>& input,
                                          const std::vector<BoundDimension>& dims,
                                          const SkylineOptions& options);

/// \brief End-to-end convenience: partitions by null bitmap, computes local
/// skylines with BNL, then the global skyline with AllPairsIncomplete (or
/// plain BNL when `options.nulls` is kComplete). This is the same pipeline
/// the physical operators execute.
Result<std::vector<Row>> ComputeSkyline(const std::vector<Row>& input,
                                        const std::vector<BoundDimension>& dims,
                                        const SkylineOptions& options);

}  // namespace skyline
}  // namespace sparkline
