// The skyline algorithms (paper sections 5.6, 5.7 and Appendix A).
//
// All functions are deterministic, allocation-conscious and usable standalone
// (the physical operators are thin wrappers). Cancellation is cooperative via
// an optional deadline, which implements the paper's benchmark timeouts.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "common/result.h"
#include "skyline/dominance.h"

namespace sparkline {

class CancellationToken;
class MemoryTracker;

namespace skyline {

/// \brief Monotone sort key of the SFS presorting family. Both keys order
/// the input so that no tuple can be strictly dominated by a later one
/// (over MIN-normalized values: MAX dimensions negated, so "smaller is
/// better" everywhere):
///
///   kSum     sum of the normalized coordinates — strictly monotone under
///            dominance (a dominates b => sum(a) < sum(b)); ties keep input
///            order. This is DominanceMatrix::Score, the pre-existing SFS
///            order.
///   kMinMax  SaLSa's minC function: primary key = the smallest normalized
///            coordinate, tie-broken by the sum. min alone is only weakly
///            monotone; the strictly monotone sum tie-break restores the
///            "window only grows" argument. This is the key whose stop
///            bound is tight (see SkylineOptions::sfs_early_stop).
enum class SfsSortKey : uint8_t {
  kSum,
  kMinMax,
};

/// \brief Options shared by all skyline algorithms.
struct SkylineOptions {
  /// SKYLINE OF DISTINCT: among tuples equal in all skyline dimensions,
  /// keep exactly one (the first encountered).
  bool distinct = false;
  /// Complete (Definition 3.1) vs. incomplete (null-restricted) dominance.
  NullSemantics nulls = NullSemantics::kComplete;
  /// If non-null, incremented once per dominance test.
  DominanceCounter* counter = nullptr;
  /// Monotonic-clock deadline in nanoseconds (0 = none); algorithms return
  /// Status::Timeout soon after passing it.
  int64_t deadline_nanos = 0;
  /// If non-null, polled alongside the deadline (same cadence, one relaxed
  /// load per ~1k dominance tests); algorithms return Status::Cancelled soon
  /// after the token flips. Must outlive the call — the executor passes the
  /// token owned (shared_ptr) by its ExecContext.
  const CancellationToken* cancel = nullptr;
  /// If non-null, DominanceMatrix storage (packed keys, null bitmaps,
  /// dictionaries) built inside the columnar entry points is charged here
  /// for as long as the matrix lives. Row kernels ignore it.
  MemoryTracker* memory = nullptr;
  /// If non-null, incremented once per successful DominanceMatrix
  /// projection (TryBuild) executed inside the columnar entry points. The
  /// exec layer aggregates it into QueryMetrics::matrix_builds per stage,
  /// which is how tests prove the columnar exchange removed per-stage
  /// re-projection.
  std::atomic<int64_t>* matrix_builds = nullptr;

  // --- SaLSa-style early termination (SFS family only) ----------------------

  /// Terminate an SFS filter pass as soon as its sort key proves every
  /// remaining tuple strictly dominated. The pass maintains
  /// minC = the smallest max-coordinate over the skyline points seen so far
  /// (its witness dominates everything whose every coordinate strictly
  /// exceeds minC) and stops once the presorted sort key guarantees that for
  /// all remaining tuples: for kMinMax, when the next min-coordinate exceeds
  /// minC; for kSum, when the next sum exceeds minC plus the per-dimension
  /// input maxima correction (sum alone cannot bound a single coordinate).
  ///
  /// Sound only for complete, non-null numeric MIN/MAX input: with NULLs or
  /// incomplete semantics a masked comparison cannot be certified by a
  /// coordinate bound, so the SFS entry points automatically disable the
  /// stop (the BNL fallbacks never consult it). Only *strictly* dominated
  /// tuples are skipped — never equal ones — so results are identical with
  /// DISTINCT on or off.
  bool sfs_early_stop = true;
  /// Which monotone presort the SFS family uses (see SfsSortKey).
  SfsSortKey sfs_sort_key = SfsSortKey::kSum;
  /// Inherited stop bound in max-coordinate space (+infinity = none): the
  /// tightest minC produced by upstream passes whose witness points belong
  /// to the same relation (e.g. the per-partition bounds a gathered
  /// ColumnarBatch carries into the global merge). Combined with the pass's
  /// own running minC; a tuple eliminated through it is dominated by a
  /// concrete witness somewhere in the original input, which is sound for
  /// the global result under transitive (complete) dominance.
  double sfs_stop_bound = std::numeric_limits<double>::infinity();
  /// If non-null, early-termination accounting (rows skipped, passes that
  /// stopped early).
  EarlyStopStats* early_stop = nullptr;
};

// Preconditions shared by every Result-returning entry point below:
//
//   * At most 32 dimensions — the null bitmaps are 32-bit. This limit is
//     re-validated by every algorithm in all build types (Status::Invalid
//     via CheckDimensionLimit), so release-mode callers cannot bypass it;
//     chunk/index bounds of the parallel kernels are likewise checked.
//   * `dims[i].ordinal` must be a valid column index of every input row and
//     MIN/MAX dimensions must be comparable values; DIFF dimensions only
//     need equality. This is a caller contract (the analyzer guarantees it
//     for planned queries) and is NOT re-checked here. Values are compared
//     as stored — no MIN/MAX normalization happens at this layer (unlike
//     columnar.h, which negates MAX keys at projection time).
//   * `options.nulls` selects the dominance semantics. kComplete implements
//     paper Definition 3.1 and assumes the skyline dimensions are non-null;
//     kIncomplete restricts every comparison to dimensions where both
//     tuples are non-null (transitivity is lost — see the per-algorithm
//     notes for which algorithms stay sound).
//   * With `options.deadline_nanos` set, algorithms return Status::Timeout
//     soon after the deadline passes; partial results are discarded.

/// \brief Block-Nested-Loop skyline (Börzsönyi et al., adapted in paper
/// section 5.6): maintains a window of incomparable tuples; correctness
/// relies on the transitivity of dominance.
///
/// \pre With NullSemantics::kIncomplete the input must be *bitmap-uniform*
/// (all rows null in the same dimensions, e.g. one partition produced by
/// PartitionByNullBitmap) — within such a partition transitivity holds and
/// BNL stays correct (paper section 5.7). For mixed-bitmap incomplete input
/// use BitmapGroupedBnl or AllPairsIncomplete instead.
Result<std::vector<Row>> BlockNestedLoop(const std::vector<Row>& input,
                                         const std::vector<BoundDimension>& dims,
                                         const SkylineOptions& options);

/// \brief Global skyline for (potentially) incomplete data: compares all
/// pairs and only *flags* dominated tuples, deleting them after the last
/// comparison. Deferred deletion is what makes cyclic dominance safe
/// (paper section 5.7 / Appendix A). Sound for any mix of null bitmaps;
/// the price is the quadratic pair scan.
Result<std::vector<Row>> AllPairsIncomplete(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims,
    const SkylineOptions& options);

/// \brief Candidate stage of the round-based parallel incomplete global
/// skyline: runs the all-pairs deferred-deletion scan restricted to the
/// chunk `input[begin, end)` and returns the *global* indices (positions in
/// `input`) of the chunk-local survivors, in ascending order.
///
/// Eliminations are sound because every flagged tuple has a concrete
/// dominating witness inside the chunk — and a witness anywhere in the
/// input excludes a tuple from the global skyline regardless of
/// transitivity. Survivors are only *candidates*: they must still be
/// validated against every other chunk's full tuple set (including tuples
/// this scan eliminated — under non-transitive dominance an eliminated
/// tuple may still dominate a foreign candidate), which is what
/// ValidateAgainstChunk does.
///
/// \pre `begin <= end <= input.size()` and `input.size() < 2^32` (indices
/// are returned as uint32_t, matching the columnar kernels).
Result<std::vector<uint32_t>> IncompleteCandidateScan(
    const std::vector<Row>& input, size_t begin, size_t end,
    const std::vector<BoundDimension>& dims, const SkylineOptions& options);

/// \brief One validation round of the parallel incomplete global skyline:
/// returns the subset of `candidates` (global indices into `input`, as
/// produced by IncompleteCandidateScan) for which the peer chunk
/// `input[peer_begin, peer_end)` contains no dominating witness. Under
/// DISTINCT a candidate is also eliminated by an *earlier* (smaller global
/// index) peer tuple that is equal with the same null bitmap, reproducing
/// the sequential algorithm's keep-the-first duplicate policy.
///
/// The peer span must be the chunk's *full* tuple set, not its candidate
/// set: survivor-vs-survivor pruning is unsound under non-transitive
/// dominance (a tuple eliminated in its own chunk can still be the only
/// witness against a foreign candidate). Candidates are never used to
/// eliminate peer tuples, so rounds over disjoint chunks commute and can
/// run in any order or in parallel.
///
/// \pre `peer_begin <= peer_end <= input.size()`; every candidate index is
/// a valid position in `input`.
Result<std::vector<uint32_t>> ValidateAgainstChunk(
    const std::vector<Row>& input, const std::vector<uint32_t>& candidates,
    size_t peer_begin, size_t peer_end,
    const std::vector<BoundDimension>& dims, const SkylineOptions& options);

/// \brief Sort-Filter-Skyline (SFS), the presorting family the paper lists
/// as future work (section 7). Requires complete data and numeric
/// dimensions; falls back to BlockNestedLoop otherwise. After sorting by a
/// monotone score (options.sfs_sort_key), no tuple can be dominated by a
/// later one, so the window only grows and every window member is final.
/// With options.sfs_early_stop the pass additionally terminates at the
/// SaLSa stop point; the stop is automatically disabled when any skyline
/// value is NULL (results are identical either way).
Result<std::vector<Row>> SortFilterSkyline(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims,
    const SkylineOptions& options);

/// \brief Grid-based skyline with cell-level pruning (Tang et al., paper
/// section 2): rows are bucketed into a uniform grid over the observed
/// value ranges (bucket order flipped for MAX dimensions so lower indices
/// are always better); a non-empty cell strictly below another cell in
/// *every* dimension eliminates that cell wholesale, without per-tuple
/// dominance tests. Survivors run through BlockNestedLoop. Complete,
/// numeric data only; falls back to BNL otherwise.
Result<std::vector<Row>> GridFilterSkyline(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims,
    const SkylineOptions& options);

/// \brief The *incorrect* global algorithm of Gulzar et al. [20], kept as an
/// executable counterexample: it deletes dominated tuples eagerly while
/// scanning clusters, so cyclic dominance chains leak tuples into the result
/// (paper Appendix A). Never used by the engine.
std::vector<Row> FlawedGulzarGlobal(const std::vector<Row>& input,
                                    const std::vector<BoundDimension>& dims);

/// \brief Quadratic reference oracle implementing the skyline definition
/// verbatim (used by tests and as the last-resort algorithm).
std::vector<Row> BruteForceSkyline(const std::vector<Row>& input,
                                   const std::vector<BoundDimension>& dims,
                                   const SkylineOptions& options);

/// \brief Groups rows by their null bitmap (paper section 5.7). The result
/// preserves input order within each group.
std::vector<std::vector<Row>> PartitionByNullBitmap(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims);

/// \brief The incomplete local-stage contract (paper section 5.7): BNL is
/// only sound within a bitmap-uniform group, so partition by null bitmap,
/// run one BNL per group, and concatenate (in ascending bitmap order).
/// Shared by the row and columnar execution paths.
Result<std::vector<Row>> BitmapGroupedBnl(const std::vector<Row>& input,
                                          const std::vector<BoundDimension>& dims,
                                          const SkylineOptions& options);

/// \brief End-to-end convenience: partitions by null bitmap, computes local
/// skylines with BNL, then the global skyline with AllPairsIncomplete (or
/// plain BNL when `options.nulls` is kComplete). This is the same pipeline
/// the physical operators execute.
Result<std::vector<Row>> ComputeSkyline(const std::vector<Row>& input,
                                        const std::vector<BoundDimension>& dims,
                                        const SkylineOptions& options);

}  // namespace skyline
}  // namespace sparkline
