#include "skyline/columnar.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#if SPARKLINE_HAVE_AVX2_COMPARE
#include <immintrin.h>
#endif

#include "skyline/kernel_common.h"

namespace sparkline {
namespace skyline {

#if SPARKLINE_HAVE_AVX2_COMPARE
namespace simd {

__attribute__((target("avx2"))) Dominance CompareKeySpansCompleteAvx2(
    const double* left, const double* right, size_t d) {
  __m256d acc_l = _mm256_setzero_pd();
  __m256d acc_r = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= d; i += 4) {
    const __m256d l = _mm256_loadu_pd(left + i);
    const __m256d r = _mm256_loadu_pd(right + i);
    acc_l = _mm256_or_pd(acc_l, _mm256_cmp_pd(l, r, _CMP_LT_OQ));
    acc_r = _mm256_or_pd(acc_r, _mm256_cmp_pd(r, l, _CMP_LT_OQ));
  }
  bool left_better = _mm256_movemask_pd(acc_l) != 0;
  bool right_better = _mm256_movemask_pd(acc_r) != 0;
  for (; i < d; ++i) {
    left_better |= left[i] < right[i];
    right_better |= right[i] < left[i];
  }
  if (left_better) {
    return right_better ? Dominance::kIncomparable : Dominance::kLeftDominates;
  }
  return right_better ? Dominance::kRightDominates : Dominance::kEqual;
}

}  // namespace simd
#endif  // SPARKLINE_HAVE_AVX2_COMPARE

namespace {

using internal::BatchedCounter;
using internal::DeadlineChecker;

/// Largest BIGINT magnitude exactly representable as double; larger values
/// could flip a comparison after projection, so TryBuild refuses them.
constexpr int64_t kMaxExactInt = int64_t{1} << 53;

}  // namespace

std::optional<DominanceMatrix> DominanceMatrix::TryBuild(
    const std::vector<Row>& rows, const std::vector<BoundDimension>& dims) {
  if (dims.empty() || dims.size() > kMaxDims) return std::nullopt;

  DominanceMatrix m;
  m.n_ = rows.size();
  m.d_ = dims.size();
  m.keys_.assign(m.n_ * m.d_, 0.0);
  m.numeric_minmax_ = true;
  m.dicts_.assign(m.d_, {});

  bool any_null = false;
  std::vector<uint32_t> nulls(m.n_, 0);
  for (size_t d = 0; d < dims.size(); ++d) {
    const BoundDimension& dim = dims[d];
    const bool is_diff = dim.goal == SkylineGoal::kDiff;
    if (is_diff) m.diff_mask_ |= (1u << d);
    const double sign = dim.goal == SkylineGoal::kMax ? -1.0 : 1.0;

    // Dictionary for VARCHAR DIFF dimensions; codes only need to preserve
    // equality, so insertion order is fine.
    std::unordered_map<std::string, double> dictionary;

    bool dim_numeric = !is_diff;
    for (size_t r = 0; r < m.n_; ++r) {
      double& slot = m.keys_[r * m.d_ + d];
      const Value& v = rows[r][dim.ordinal];
      if (v.is_null()) {
        nulls[r] |= (1u << d);
        any_null = true;
        continue;
      }
      double key;
      switch (v.type().id()) {
        case TypeId::kBool:
          key = v.bool_value() ? 1.0 : 0.0;
          dim_numeric = false;  // row SFS/grid treat BOOLEAN as non-numeric
          break;
        case TypeId::kInt64: {
          const int64_t i = v.int64_value();
          if (i > kMaxExactInt || i < -kMaxExactInt) return std::nullopt;
          key = static_cast<double>(i);
          break;
        }
        case TypeId::kDouble:
          key = v.double_value();
          if (std::isnan(key)) return std::nullopt;
          break;
        case TypeId::kString: {
          if (!is_diff) return std::nullopt;  // MIN/MAX over VARCHAR
          auto [it, inserted] = dictionary.emplace(
              v.string_value(), static_cast<double>(dictionary.size()));
          // Keep the decode table so ConcatSelected can remap codes later.
          if (inserted) m.dicts_[d].push_back(v.string_value());
          slot = it->second;
          continue;
        }
        default:
          return std::nullopt;
      }
      slot = is_diff ? key : sign * key;
    }
    m.numeric_minmax_ = m.numeric_minmax_ && dim_numeric;
  }
  if (any_null) m.nulls_ = std::move(nulls);
  return m;
}

int64_t DominanceMatrix::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(DominanceMatrix));
  bytes += static_cast<int64_t>(keys_.capacity() * sizeof(double));
  bytes += static_cast<int64_t>(nulls_.capacity() * sizeof(uint32_t));
  for (const auto& dict : dicts_) {
    for (const auto& s : dict) {
      bytes += static_cast<int64_t>(sizeof(std::string) + s.capacity());
    }
  }
  return bytes;
}

DominanceMatrix DominanceMatrix::ConcatSelected(
    const std::vector<const DominanceMatrix*>& parts,
    const std::vector<const std::vector<uint32_t>*>& selections) {
  SL_DCHECK(!parts.empty() && parts.size() == selections.size());
  DominanceMatrix out;
  out.d_ = parts[0]->d_;
  out.diff_mask_ = parts[0]->diff_mask_;
  out.numeric_minmax_ = true;
  out.dicts_.assign(out.d_, {});

  size_t total = 0;
  bool any_null = false;
  for (size_t p = 0; p < parts.size(); ++p) {
    SL_DCHECK(parts[p]->d_ == out.d_ && parts[p]->diff_mask_ == out.diff_mask_);
    total += selections[p]->size();
    any_null |= parts[p]->has_nulls();
    out.numeric_minmax_ &= parts[p]->numeric_minmax_;
  }
  out.n_ = total;
  out.keys_.assign(total * out.d_, 0.0);
  if (any_null) out.nulls_.assign(total, 0);

  // A dimension is dictionary-encoded iff any part saw a string there (a
  // part can have an empty dict only when its rows are all NULL in that
  // dimension, in which case there are no codes to remap).
  std::vector<char> dict_dim(out.d_, 0);
  std::vector<std::unordered_map<std::string, double>> unified(out.d_);
  for (size_t d = 0; d < out.d_; ++d) {
    for (const auto* part : parts) {
      if (!part->dicts_[d].empty()) dict_dim[d] = 1;
    }
  }

  size_t cursor = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    const DominanceMatrix& part = *parts[p];
    for (const uint32_t r : *selections[p]) {
      std::copy_n(part.row_keys(r), out.d_,
                  out.keys_.begin() + cursor * out.d_);
      const uint32_t nulls = part.null_bitmap(r);
      if (any_null) out.nulls_[cursor] = nulls;
      for (size_t d = 0; d < out.d_; ++d) {
        if (!dict_dim[d] || ((nulls >> d) & 1u)) continue;
        const size_t code =
            static_cast<size_t>(part.keys_[r * part.d_ + d]);
        const std::string& value = part.dicts_[d][code];
        auto [it, inserted] = unified[d].emplace(
            value, static_cast<double>(unified[d].size()));
        if (inserted) out.dicts_[d].push_back(value);
        out.keys_[cursor * out.d_ + d] = it->second;
      }
      ++cursor;
    }
  }
  return out;
}

std::vector<uint32_t> AllIndices(const DominanceMatrix& matrix) {
  std::vector<uint32_t> idx(matrix.num_rows());
  for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return idx;
}

// --- ColumnarBatch ----------------------------------------------------------

std::optional<ColumnarBatch> ColumnarBatch::Project(
    std::shared_ptr<std::vector<Row>> rows,
    const std::vector<BoundDimension>& dims, MemoryTracker* memory) {
  std::optional<DominanceMatrix> matrix = DominanceMatrix::TryBuild(*rows, dims);
  if (!matrix.has_value()) return std::nullopt;
  ColumnarBatch batch;
  batch.reservation_ =
      std::make_shared<const ScopedReservation>(memory, matrix->MemoryBytes());
  batch.matrix_ = std::make_shared<const DominanceMatrix>(std::move(*matrix));
  batch.rows_ = std::move(rows);
  batch.dims_ = dims;
  batch.indices_ = AllIndices(*batch.matrix_);
  return batch;
}

std::vector<Row> ColumnarBatch::DecodeConsuming() && {
  if (rows_.use_count() != 1) return Decode();
  std::vector<Row> out;
  out.reserve(indices_.size());
  for (const uint32_t i : indices_) out.push_back(std::move((*rows_)[i]));
  rows_.reset();
  return out;
}

ColumnarBatch ColumnarBatch::Concat(std::vector<ColumnarBatch>* parts,
                                    MemoryTracker* memory) {
  SL_DCHECK(!parts->empty());
  // A single part is still compacted (not passed through): its backing may
  // hold the stage's full input while the view kept only survivors, and the
  // gather is where non-survivors should stop occupying memory — exactly
  // like the row pipeline, whose local stage materializes survivors only.
  std::vector<const DominanceMatrix*> matrices;
  std::vector<const std::vector<uint32_t>*> selections;
  size_t total = 0;
  bool all_sorted = true;
  const SfsSortKey sort_key = parts->front().sort_key_;
  double stop_bound = std::numeric_limits<double>::infinity();
  for (const ColumnarBatch& part : *parts) {
    matrices.push_back(part.matrix_.get());
    selections.push_back(&part.indices_);
    total += part.num_rows();
    // Sorted inheritance needs every part ascending in the *same* key.
    all_sorted &= part.score_sorted_ && part.sort_key_ == sort_key;
    // Each part's bound witness is one of its shipped rows, so the
    // tightest bound stays valid for the concatenated relation.
    stop_bound = std::min(stop_bound, part.stop_bound_);
  }
  DominanceMatrix merged = DominanceMatrix::ConcatSelected(matrices, selections);

  // Backing rows of the result = the selected rows in view order, i.e.
  // exactly what a row-mode gather would ship — matrix row order is the
  // gathered input order. Exclusively owned part backings are moved, like
  // the row gather moves (survivor views have distinct indices, so each row
  // moves at most once).
  auto rows = std::make_shared<std::vector<Row>>();
  rows->reserve(total);
  for (ColumnarBatch& part : *parts) {
    const bool exclusive = part.rows_.use_count() == 1;
    for (const uint32_t r : part.indices_) {
      if (exclusive) {
        rows->push_back(std::move((*part.rows_)[r]));
      } else {
        rows->push_back((*part.rows_)[r]);
      }
    }
  }

  ColumnarBatch batch;
  batch.reservation_ =
      std::make_shared<const ScopedReservation>(memory, merged.MemoryBytes());
  batch.matrix_ = std::make_shared<const DominanceMatrix>(std::move(merged));
  batch.rows_ = std::move(rows);
  batch.dims_ = parts->front().dims_;
  batch.stop_bound_ = stop_bound;
  if (all_sorted) {
    // SFS-order inheritance: each part's view became one contiguous run of
    // the new matrix; merge the runs instead of re-sorting downstream.
    std::vector<std::vector<uint32_t>> runs;
    uint32_t offset = 0;
    for (const ColumnarBatch& part : *parts) {
      std::vector<uint32_t> run(part.num_rows());
      for (uint32_t i = 0; i < run.size(); ++i) run[i] = offset + i;
      offset += static_cast<uint32_t>(part.num_rows());
      runs.push_back(std::move(run));
    }
    batch.indices_ = MergeByScore(*batch.matrix_, runs, sort_key);
    batch.score_sorted_ = true;
    batch.sort_key_ = sort_key;
  } else {
    batch.indices_ = AllIndices(*batch.matrix_);
  }
  return batch;
}

ColumnarBatch ColumnarBatch::WithSelection(std::vector<uint32_t> indices,
                                           bool score_sorted,
                                           SfsSortKey sort_key,
                                           double stop_bound) const {
  ColumnarBatch batch = *this;
  batch.indices_ = std::move(indices);
  batch.score_sorted_ = score_sorted;
  batch.sort_key_ = sort_key;
  batch.stop_bound_ = stop_bound;
  return batch;
}

ColumnarBatch ColumnarBatch::Slice(size_t begin, size_t end) const {
  SL_DCHECK(begin <= end && end <= indices_.size());
  ColumnarBatch batch = *this;
  batch.indices_.assign(indices_.begin() + begin, indices_.begin() + end);
  return batch;
}

Result<std::vector<uint32_t>> ColumnarBlockNestedLoop(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input,
    const SkylineOptions& options) {
  const size_t d = matrix.num_dims();
  const uint32_t diff_mask = matrix.diff_mask();
  const bool incomplete = options.nulls == NullSemantics::kIncomplete;
  const bool branchless = !incomplete && diff_mask == 0;

  // The window is the structure every incoming tuple scans, so its keys are
  // kept in a dense local buffer (window_keys[i*d .. i*d+d)) — the scan
  // reads memory sequentially instead of hopping through the matrix by
  // survivor index.
  std::vector<uint32_t> window;
  std::vector<double> window_keys;
  std::vector<uint32_t> window_nulls;

  DeadlineChecker deadline(options);
  BatchedCounter tests(options);
  for (const uint32_t tuple : input) {
    const double* keys = matrix.row_keys(tuple);
    const uint32_t nulls = matrix.null_bitmap(tuple);
    bool eliminated = false;
    size_t i = 0;
    while (i < window.size()) {
      SL_RETURN_NOT_OK(deadline.Check());
      tests.Tick();
      const double* wkeys = window_keys.data() + i * d;
      const Dominance dom =
          branchless ? CompareKeySpansComplete(keys, wkeys, d)
                     : CompareKeySpans(keys, wkeys, d, diff_mask,
                                       incomplete ? (nulls | window_nulls[i])
                                                  : 0);
      if (dom == Dominance::kRightDominates ||
          (dom == Dominance::kEqual && options.distinct)) {
        // The newcomer is dominated (or a duplicate under DISTINCT); by
        // transitivity it cannot dominate anything else in the window.
        eliminated = true;
        break;
      }
      if (dom == Dominance::kLeftDominates) {
        // Swap-erase the dominated window tuple, keys included.
        window[i] = window.back();
        window.pop_back();
        window_nulls[i] = window_nulls.back();
        window_nulls.pop_back();
        std::copy_n(window_keys.end() - d, d, window_keys.begin() + i * d);
        window_keys.resize(window_keys.size() - d);
        continue;  // re-examine the swapped-in element at index i
      }
      ++i;
    }
    if (!eliminated) {
      window.push_back(tuple);
      window_nulls.push_back(nulls);
      window_keys.insert(window_keys.end(), keys, keys + d);
    }
  }
  return window;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The kSum stop test converts the max-coordinate bound minC into sort-key
/// (sum) space: a coordinate is only lower-bounded by the sum through the
/// other dimensions' maxima (t_j >= sum(t) - sum_{k != j} hi_k over the
/// pass's input), so the sum threshold is minC + (sum(hi) - min(hi)).
double SumStopOffset(const DominanceMatrix& matrix,
                     const std::vector<uint32_t>& input) {
  const size_t d = matrix.num_dims();
  if (input.empty() || d == 0) return 0;
  std::vector<double> hi(d, -kInf);
  for (const uint32_t r : input) {
    const double* keys = matrix.row_keys(r);
    for (size_t j = 0; j < d; ++j) hi[j] = std::max(hi[j], keys[j]);
  }
  double total = 0, min_hi = kInf;
  for (const double h : hi) {
    total += h;
    min_hi = std::min(min_hi, h);
  }
  return total - min_hi;
}

/// The SFS filter pass over key-ascending input: no later tuple can
/// dominate an earlier one, so the window only grows — an append-only dense
/// key buffer scanned sequentially per incoming tuple. Shared by the
/// sorting entry point and the inherited-order (presorted) one.
///
/// With options.sfs_early_stop the pass maintains the SaLSa stop bound
/// minC = min over window members (and any inherited bound) of MaxKey and
/// terminates once the ascending sort key proves every remaining tuple
/// strictly dominated by the bound's witness. NULL bitmaps disable the stop
/// (NULL key slots hold placeholders, so coordinate bounds are meaningless).
Result<std::vector<uint32_t>> SfsFilterPass(const DominanceMatrix& matrix,
                                            const std::vector<uint32_t>& ordered,
                                            const SkylineOptions& options) {
  const size_t d = matrix.num_dims();
  const bool early_stop = options.sfs_early_stop && !matrix.has_nulls();
  const SfsSortKey sort_key = options.sfs_sort_key;
  const double sum_offset =
      early_stop && sort_key == SfsSortKey::kSum
          ? SumStopOffset(matrix, ordered)
          : 0;
  double min_c = early_stop ? options.sfs_stop_bound : kInf;

  std::vector<uint32_t> window;
  std::vector<double> window_keys;
  DeadlineChecker deadline(options);
  BatchedCounter tests(options);
  for (size_t pos = 0; pos < ordered.size(); ++pos) {
    const uint32_t tuple = ordered[pos];
    SL_RETURN_NOT_OK(deadline.Check());
    const double* keys = matrix.row_keys(tuple);
    if (early_stop) {
      // Stop point: once the ascending sort key exceeds the bound, every
      // coordinate of every remaining tuple strictly exceeds minC, so the
      // bound's witness strictly dominates them all. Strict-only
      // elimination never drops equal tuples, so DISTINCT is unaffected.
      const double key =
          sort_key == SfsSortKey::kMinMax ? matrix.MinKey(tuple)
                                          : matrix.Score(tuple);
      const double bound =
          sort_key == SfsSortKey::kMinMax ? min_c : min_c + sum_offset;
      if (key > bound) {
        if (options.early_stop != nullptr) {
          options.early_stop->rows_skipped.fetch_add(
              static_cast<int64_t>(ordered.size() - pos),
              std::memory_order_relaxed);
          options.early_stop->stops.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
    }
    bool eliminated = false;
    for (size_t i = 0; i < window.size(); ++i) {
      SL_RETURN_NOT_OK(deadline.Check());
      tests.Tick();
      // SFS runs only on complete numeric MIN/MAX inputs, so the
      // branchless compare applies unconditionally.
      const Dominance dom =
          CompareKeySpansComplete(window_keys.data() + i * d, keys, d);
      if (dom == Dominance::kLeftDominates ||
          (dom == Dominance::kEqual && options.distinct)) {
        eliminated = true;
        break;
      }
    }
    if (!eliminated) {
      window.push_back(tuple);
      window_keys.insert(window_keys.end(), keys, keys + d);
      if (early_stop) min_c = std::min(min_c, matrix.MaxKey(tuple));
    }
  }
  return window;
}

}  // namespace

Result<std::vector<uint32_t>> ColumnarSortFilterSkyline(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input,
    const SkylineOptions& options) {
  if (!SfsFastPathApplicable(matrix, options)) {
    return ColumnarBlockNestedLoop(matrix, input, options);
  }
  // Monotone sort key over the negated-for-MAX keys: kSum is strictly
  // monotone under dominance; kMinMax (SaLSa's minC) is weakly monotone and
  // tie-broken by the strictly monotone sum, so in either order the window
  // only grows.
  std::vector<double> scores(input.size());
  for (size_t i = 0; i < input.size(); ++i) scores[i] = matrix.Score(input[i]);
  std::vector<double> min_keys;
  if (options.sfs_sort_key == SfsSortKey::kMinMax) {
    min_keys.resize(input.size());
    for (size_t i = 0; i < input.size(); ++i) {
      min_keys[i] = matrix.MinKey(input[i]);
    }
  }
  std::vector<uint32_t> order(input.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (!min_keys.empty() && min_keys[a] != min_keys[b]) {
      return min_keys[a] < min_keys[b];
    }
    return scores[a] < scores[b];
  });
  std::vector<uint32_t> ordered(input.size());
  for (size_t i = 0; i < order.size(); ++i) ordered[i] = input[order[i]];
  return SfsFilterPass(matrix, ordered, options);
}

Result<std::vector<uint32_t>> ColumnarSortFilterSkylinePresorted(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input,
    const SkylineOptions& options) {
  SL_DCHECK(SfsFastPathApplicable(matrix, options));
  return SfsFilterPass(matrix, input, options);
}

std::vector<uint32_t> MergeByScore(
    const DominanceMatrix& matrix,
    const std::vector<std::vector<uint32_t>>& runs, SfsSortKey sort_key) {
  // Iterative stable two-way merges: std::merge takes from the first range
  // on ties, and earlier runs accumulate on the left, so equal keys keep
  // run order — the same tie-break a global stable sort would produce.
  std::vector<uint32_t> merged;
  auto key_less = [&](uint32_t a, uint32_t b) {
    if (sort_key == SfsSortKey::kMinMax) {
      const double ma = matrix.MinKey(a);
      const double mb = matrix.MinKey(b);
      if (ma != mb) return ma < mb;
    }
    return matrix.Score(a) < matrix.Score(b);
  };
  for (const auto& run : runs) {
    if (merged.empty()) {
      merged = run;
      continue;
    }
    std::vector<uint32_t> next;
    next.reserve(merged.size() + run.size());
    std::merge(merged.begin(), merged.end(), run.begin(), run.end(),
               std::back_inserter(next), key_less);
    merged = std::move(next);
  }
  return merged;
}

double ComputeStopBound(const DominanceMatrix& matrix,
                        const std::vector<uint32_t>& view) {
  if (matrix.has_nulls() || matrix.num_dims() == 0) return kInf;
  double bound = kInf;
  for (const uint32_t r : view) bound = std::min(bound, matrix.MaxKey(r));
  return bound;
}

void NominateFilterPoints(const DominanceMatrix& matrix,
                          const std::vector<uint32_t>& view, size_t k,
                          FilterPointSet* out) {
  SL_DCHECK(matrix.all_numeric_minmax() && !matrix.has_nulls() &&
            matrix.diff_mask() == 0);
  const size_t d = matrix.num_dims();
  if (out->num_dims == 0) out->num_dims = d;
  SL_DCHECK(out->num_dims == d);
  if (k == 0 || view.empty() || d == 0) return;

  // k is tiny (a handful of points per partition), so a linear scan keeping
  // the k smallest MaxKeys beats sorting the view.
  std::vector<std::pair<double, uint32_t>> best;  // (MaxKey, row), ascending
  best.reserve(k + 1);
  for (const uint32_t r : view) {
    const double mk = matrix.MaxKey(r);
    if (best.size() == k && mk >= best.back().first) continue;
    auto pos = std::upper_bound(
        best.begin(), best.end(), mk,
        [](double v, const auto& e) { return v < e.first; });
    best.insert(pos, {mk, r});
    if (best.size() > k) best.pop_back();
  }
  for (const auto& [mk, r] : best) {
    const double* keys = matrix.row_keys(r);
    out->keys.insert(out->keys.end(), keys, keys + d);
  }
}

Result<std::vector<uint32_t>> PruneAgainstFilter(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& view,
    const FilterPointSet& filter, const SkylineOptions& options) {
  SL_DCHECK(matrix.all_numeric_minmax() && !matrix.has_nulls() &&
            matrix.diff_mask() == 0);
  const size_t d = matrix.num_dims();
  SL_DCHECK(filter.num_dims == d);
  const size_t k = filter.num_points();
  if (k == 0) return view;

  DeadlineChecker deadline(options);
  BatchedCounter tests(options);
  std::vector<uint32_t> survivors;
  survivors.reserve(view.size());
  for (const uint32_t r : view) {
    SL_RETURN_NOT_OK(deadline.Check());
    const double* keys = matrix.row_keys(r);
    bool dominated = false;
    for (size_t p = 0; p < k; ++p) {
      tests.Tick();
      // Strict-only: kEqual keeps the row (a nominee survives meeting its
      // own broadcast copy; DISTINCT ties are resolved at the merge).
      if (CompareKeySpansComplete(filter.point(p), keys, d) ==
          Dominance::kLeftDominates) {
        dominated = true;
        break;
      }
    }
    if (!dominated) survivors.push_back(r);
  }
  return survivors;
}

Result<std::vector<uint32_t>> ColumnarGridFilterSkyline(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input,
    const SkylineOptions& options) {
  const size_t n = input.size();
  const size_t num_dims = matrix.num_dims();
  // Cell keys pack 4 bits per dimension into a uint64_t, so beyond 16
  // dimensions the shift would silently wrap — fall back (regression-tested).
  if (options.nulls != NullSemantics::kComplete || n < 64 ||
      !matrix.all_numeric_minmax() || num_dims > 16) {
    return ColumnarBlockNestedLoop(matrix, input, options);
  }
  // Roughly n^(1/d) buckets per dimension, clamped to [2, 16]. All keys are
  // already "smaller is better", so no bucket mirroring is needed: floor
  // bucketing keeps the strictness argument — a point in bucket b lies
  // strictly below the lower edge of bucket b+1, so cell A < cell B in every
  // dimension implies every point of A strictly dominates every point of B.
  size_t buckets = static_cast<size_t>(
      std::round(std::pow(static_cast<double>(n), 1.0 / num_dims)));
  buckets = std::min<size_t>(16, std::max<size_t>(2, buckets));

  std::vector<double> lo(num_dims), hi(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    lo[d] = hi[d] = matrix.key(input[0], d);
  }
  for (const uint32_t r : input) {
    const double* keys = matrix.row_keys(r);
    for (size_t d = 0; d < num_dims; ++d) {
      lo[d] = std::min(lo[d], keys[d]);
      hi[d] = std::max(hi[d], keys[d]);
    }
  }

  auto cell_key = [&](uint32_t r) {
    const double* keys = matrix.row_keys(r);
    uint64_t key = 0;
    for (size_t d = 0; d < num_dims; ++d) {
      const double width = (hi[d] - lo[d]) / static_cast<double>(buckets);
      uint64_t b = 0;
      if (width > 0) {
        b = static_cast<uint64_t>((keys[d] - lo[d]) / width);
        if (b >= buckets) b = buckets - 1;
      }
      key = (key << 4) | b;
    }
    return key;
  };

  std::map<uint64_t, std::vector<uint32_t>> cells;
  for (const uint32_t r : input) cells[cell_key(r)].push_back(r);
  if (cells.size() > 4096) {
    // Too fragmented for the quadratic cell pass to pay off.
    return ColumnarBlockNestedLoop(matrix, input, options);
  }

  auto unpack = [&](uint64_t key, size_t d) {
    return (key >> (4 * (num_dims - 1 - d))) & 0xf;
  };
  std::vector<uint64_t> keys;
  keys.reserve(cells.size());
  for (const auto& [key, rows] : cells) keys.push_back(key);

  std::vector<uint32_t> survivors;
  DeadlineChecker deadline(options);
  for (const uint64_t key : keys) {
    bool eliminated = false;
    for (const uint64_t other : keys) {
      SL_RETURN_NOT_OK(deadline.Check());
      if (other == key) continue;
      bool strictly_better_everywhere = true;
      for (size_t d = 0; d < num_dims; ++d) {
        if (unpack(other, d) >= unpack(key, d)) {
          strictly_better_everywhere = false;
          break;
        }
      }
      if (strictly_better_everywhere) {
        eliminated = true;
        break;
      }
    }
    if (!eliminated) {
      for (const uint32_t r : cells[key]) survivors.push_back(r);
    }
  }
  return ColumnarBlockNestedLoop(matrix, survivors, options);
}

Result<std::vector<uint32_t>> ColumnarAllPairsIncomplete(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input,
    const SkylineOptions& options) {
  const size_t n = input.size();
  std::vector<char> dominated(n, 0);
  DeadlineChecker deadline(options);
  BatchedCounter tests(options);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      // A dominated tuple may still dominate others (Appendix A); only pairs
      // where both are already flagged are irrelevant.
      if (dominated[i] && dominated[j]) continue;
      SL_RETURN_NOT_OK(deadline.Check());
      tests.Tick();
      const Dominance dom =
          matrix.Compare(input[i], input[j], options.nulls);
      switch (dom) {
        case Dominance::kLeftDominates:
          dominated[j] = 1;
          break;
        case Dominance::kRightDominates:
          dominated[i] = 1;
          break;
        case Dominance::kEqual:
          // Duplicates collapse under DISTINCT only within one null pattern;
          // "equal on common dimensions" across patterns is not equality.
          if (options.distinct &&
              matrix.null_bitmap(input[i]) == matrix.null_bitmap(input[j])) {
            dominated[j] = 1;
          }
          break;
        case Dominance::kIncomparable:
          break;
      }
    }
  }
  // Deferred deletion: only now drop the flagged tuples.
  std::vector<uint32_t> result;
  for (size_t i = 0; i < n; ++i) {
    if (!dominated[i]) result.push_back(input[i]);
  }
  return result;
}

Result<std::vector<uint32_t>> ColumnarIncompleteCandidateScan(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& chunk,
    const SkylineOptions& options) {
  // The candidate stage *is* the all-pairs deferred-deletion scan run over
  // one chunk's index slice: every elimination cites a witness inside the
  // chunk, survivors are the chunk-local candidates. The shared matrix
  // supplies the per-row null bitmaps, so no per-chunk re-projection
  // happens.
  return ColumnarAllPairsIncomplete(matrix, chunk, options);
}

Result<std::vector<uint32_t>> ColumnarValidateAgainstChunk(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& candidates,
    const std::vector<uint32_t>& peer, const SkylineOptions& options) {
  DeadlineChecker deadline(options);
  BatchedCounter tests(options);
  std::vector<uint32_t> survivors;
  survivors.reserve(candidates.size());
  for (const uint32_t c : candidates) {
    const uint32_t bitmap = matrix.null_bitmap(c);
    bool eliminated = false;
    // Early exit on the first witness is sound (peer rows are never
    // eliminated by this pass, so a witness is final).
    for (const uint32_t t : peer) {
      SL_RETURN_NOT_OK(deadline.Check());
      tests.Tick();
      const Dominance dom = matrix.Compare(t, c, options.nulls);
      if (dom == Dominance::kLeftDominates ||
          (dom == Dominance::kEqual && options.distinct && t < c &&
           matrix.null_bitmap(t) == bitmap)) {
        eliminated = true;
        break;
      }
    }
    if (!eliminated) survivors.push_back(c);
  }
  return survivors;
}

std::vector<std::vector<uint32_t>> PartitionIndicesByNullBitmap(
    const DominanceMatrix& matrix) {
  return PartitionIndicesByNullBitmap(matrix, AllIndices(matrix));
}

std::vector<std::vector<uint32_t>> PartitionIndicesByNullBitmap(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input) {
  std::map<uint32_t, std::vector<uint32_t>> groups;
  for (const uint32_t r : input) {
    groups[matrix.null_bitmap(r)].push_back(r);
  }
  std::vector<std::vector<uint32_t>> out;
  out.reserve(groups.size());
  for (auto& [bitmap, rows] : groups) out.push_back(std::move(rows));
  return out;
}

std::vector<Row> MaterializeRows(const std::vector<Row>& input,
                                 const std::vector<uint32_t>& indices) {
  std::vector<Row> out;
  out.reserve(indices.size());
  for (const uint32_t i : indices) out.push_back(input[i]);
  return out;
}

namespace {

Result<std::vector<uint32_t>> DispatchKernel(ColumnarKernel kernel,
                                             const DominanceMatrix& matrix,
                                             const std::vector<uint32_t>& input,
                                             const SkylineOptions& options) {
  switch (kernel) {
    case ColumnarKernel::kSortFilterSkyline:
      return ColumnarSortFilterSkyline(matrix, input, options);
    case ColumnarKernel::kGridFilter:
      return ColumnarGridFilterSkyline(matrix, input, options);
    case ColumnarKernel::kBlockNestedLoop:
      break;
  }
  return ColumnarBlockNestedLoop(matrix, input, options);
}

Result<std::vector<Row>> RowFallback(ColumnarKernel kernel,
                                     const std::vector<Row>& input,
                                     const std::vector<BoundDimension>& dims,
                                     const SkylineOptions& options) {
  switch (kernel) {
    case ColumnarKernel::kSortFilterSkyline:
      return SortFilterSkyline(input, dims, options);
    case ColumnarKernel::kGridFilter:
      return GridFilterSkyline(input, dims, options);
    case ColumnarKernel::kBlockNestedLoop:
      break;
  }
  return BlockNestedLoop(input, dims, options);
}

/// Counts one successful projection against options.matrix_builds.
void CountMatrixBuild(const SkylineOptions& options) {
  if (options.matrix_builds != nullptr) {
    options.matrix_builds->fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

Result<std::vector<uint32_t>> RunColumnarKernel(
    ColumnarKernel kernel, const DominanceMatrix& matrix,
    const std::vector<uint32_t>& input, const SkylineOptions& options) {
  if (options.nulls == NullSemantics::kComplete) {
    return DispatchKernel(kernel, matrix, input, options);
  }
  // Incomplete semantics: one BNL per bitmap-uniform group over the shared
  // matrix (no per-group re-projection).
  std::vector<uint32_t> survivors;
  for (const auto& group : PartitionIndicesByNullBitmap(matrix, input)) {
    SL_ASSIGN_OR_RETURN(std::vector<uint32_t> local,
                        ColumnarBlockNestedLoop(matrix, group, options));
    survivors.insert(survivors.end(), local.begin(), local.end());
  }
  return survivors;
}

Result<std::vector<Row>> ColumnarSkyline(ColumnarKernel kernel,
                                         const std::vector<Row>& input,
                                         const std::vector<BoundDimension>& dims,
                                         const SkylineOptions& options) {
  std::optional<DominanceMatrix> matrix = DominanceMatrix::TryBuild(input, dims);
  if (!matrix.has_value()) {
    if (options.nulls == NullSemantics::kComplete) {
      return RowFallback(kernel, input, dims, options);
    }
    return BitmapGroupedBnl(input, dims, options);
  }
  CountMatrixBuild(options);
  ScopedReservation reservation(options.memory, matrix->MemoryBytes());
  SL_ASSIGN_OR_RETURN(
      std::vector<uint32_t> survivors,
      RunColumnarKernel(kernel, *matrix, AllIndices(*matrix), options));
  return MaterializeRows(input, survivors);
}

Result<std::vector<Row>> ColumnarAllPairsSkyline(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims,
    const SkylineOptions& options) {
  std::optional<DominanceMatrix> matrix = DominanceMatrix::TryBuild(input, dims);
  if (!matrix.has_value()) return AllPairsIncomplete(input, dims, options);
  CountMatrixBuild(options);
  ScopedReservation reservation(options.memory, matrix->MemoryBytes());
  SL_ASSIGN_OR_RETURN(
      std::vector<uint32_t> survivors,
      ColumnarAllPairsIncomplete(*matrix, AllIndices(*matrix), options));
  return MaterializeRows(input, survivors);
}

Result<DeltaClassification> DeltaClassify(const std::vector<Row>& skyline,
                                          const std::vector<Row>& batch,
                                          const std::vector<BoundDimension>& dims,
                                          const SkylineOptions& options) {
  if (options.nulls != NullSemantics::kComplete) {
    return Status::Invalid(
        "DeltaClassify requires complete dominance semantics (incomplete "
        "dominance is non-transitive, so the cached skyline is not a "
        "sufficient witness set)");
  }
  SL_RETURN_NOT_OK(CheckDimensionLimit(dims));
  DeltaClassification out;
  const size_t n = skyline.size();
  const size_t m = batch.size();
  if (m == 0) return out;

  // One combined projection — skyline rows first, batch rows after — so
  // both sides share packed keys and one VARCHAR dictionary (codes are only
  // comparable within a single matrix).
  std::vector<Row> combined;
  combined.reserve(n + m);
  combined.insert(combined.end(), skyline.begin(), skyline.end());
  combined.insert(combined.end(), batch.begin(), batch.end());
  std::optional<DominanceMatrix> matrix =
      DominanceMatrix::TryBuild(combined, dims);
  if (matrix.has_value()) {
    CountMatrixBuild(options);
    if (matrix->has_nulls()) {
      out.needs_fallback = true;
      return out;
    }
  } else {
    for (const Row& row : combined) {
      if (NullBitmap(row, dims) != 0) {
        out.needs_fallback = true;
        return out;
      }
    }
  }
  ScopedReservation reservation(
      options.memory, matrix.has_value() ? matrix->MemoryBytes() : 0);

  const auto compare = [&](size_t a, size_t b) {
    internal::CountTest(options);
    if (matrix.has_value()) {
      return matrix->Compare(static_cast<uint32_t>(a),
                             static_cast<uint32_t>(b),
                             NullSemantics::kComplete);
    }
    return CompareRows(combined[a], combined[b], dims,
                       NullSemantics::kComplete);
  };

  // Maintenance runs on the catalog notifier thread, but the classify is
  // still O(|skyline| * |batch|): poll the deadline/cancel state like every
  // other kernel loop so an oversized classify cannot wedge the notifier.
  DeadlineChecker deadline(options);

  // Phase A: a batch tuple survives iff no cached skyline point dominates
  // it (sufficient by transitivity, see header). DISTINCT dim-equality with
  // a cached point cannot be replayed exactly -> conservative fallback.
  std::vector<uint32_t> candidates;
  for (size_t j = 0; j < m; ++j) {
    const size_t bj = n + j;
    bool dominated = false;
    for (size_t i = 0; i < n && !dominated; ++i) {
      SL_RETURN_NOT_OK(deadline.Check());
      switch (compare(i, bj)) {
        case Dominance::kLeftDominates:
          dominated = true;
          break;
        case Dominance::kEqual:
          if (options.distinct) {
            out.needs_fallback = true;
            return out;
          }
          break;
        default:
          break;
      }
    }
    if (!dominated) candidates.push_back(static_cast<uint32_t>(j));
  }

  // Phase B: reduce the survivors to their own skyline — a tuple dominated
  // only by another *new* tuple must not enter either. Pairwise elimination
  // is exact under transitive dominance: every dominated candidate has an
  // undominated (hence never-eliminated) dominator that removes it.
  std::vector<char> dead(candidates.size(), 0);
  for (size_t a = 0; a < candidates.size(); ++a) {
    if (dead[a]) continue;
    for (size_t b = a + 1; b < candidates.size() && !dead[a]; ++b) {
      if (dead[b]) continue;
      SL_RETURN_NOT_OK(deadline.Check());
      switch (compare(n + candidates[a], n + candidates[b])) {
        case Dominance::kLeftDominates:
          dead[b] = 1;
          break;
        case Dominance::kRightDominates:
          dead[a] = 1;
          break;
        case Dominance::kEqual:
          if (options.distinct) {
            out.needs_fallback = true;
            return out;
          }
          break;
        default:
          break;
      }
    }
    if (!dead[a]) out.entering.push_back(candidates[a]);
  }

  // Phase C: cached points dominated by an entering tuple are evicted.
  // kEqual never evicts: without DISTINCT equal tuples coexist, and
  // DISTINCT equality already fell back above.
  if (!out.entering.empty()) {
    for (size_t i = 0; i < n; ++i) {
      SL_RETURN_NOT_OK(deadline.Check());
      for (uint32_t j : out.entering) {
        if (compare(n + j, i) == Dominance::kLeftDominates) {
          out.evicted.push_back(static_cast<uint32_t>(i));
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace skyline
}  // namespace sparkline
