// Internals shared by the row-oriented (algorithms.cc) and columnar
// (columnar.cc) skyline kernels: cooperative deadline checking and
// dominance-test accounting. Not part of the public skyline API.
#pragma once

#include <cstdint>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/timer.h"
#include "skyline/algorithms.h"

namespace sparkline {
namespace skyline {
namespace internal {

/// Checks the deadline — and, when the options carry a CancellationToken,
/// the token — every ~1k dominance tests. These polls are the kernels'
/// cancellation points: even a single-stage quadratic kernel unwinds with
/// Status::Cancelled/Timeout within microseconds of the signal.
class DeadlineChecker {
 public:
  explicit DeadlineChecker(int64_t deadline_nanos)
      : deadline_(deadline_nanos) {}
  explicit DeadlineChecker(const SkylineOptions& options)
      : deadline_(options.deadline_nanos), cancel_(options.cancel) {}

  Status Check() {
    if (deadline_ == 0 && cancel_ == nullptr) return Status::OK();
    if ((++ticks_ & 0x3ff) != 0) return Status::OK();
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Status::Cancelled("skyline computation cancelled");
    }
    if (deadline_ != 0 && StopWatch::NowNanos() > deadline_) {
      return Status::Timeout("skyline computation exceeded the deadline");
    }
    return Status::OK();
  }

 private:
  int64_t deadline_;
  const CancellationToken* cancel_ = nullptr;
  uint64_t ticks_ = 0;
};

inline void CountTest(const SkylineOptions& options) {
  if (options.counter != nullptr) {
    options.counter->tests.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Batched dominance-test accounting for the columnar kernels: a per-test
/// atomic fetch_add costs more than the columnar compare itself, so tests
/// are tallied locally and flushed once (destructor or early return). The
/// observable count is identical to per-test counting.
class BatchedCounter {
 public:
  explicit BatchedCounter(const SkylineOptions& options)
      : counter_(options.counter) {}
  ~BatchedCounter() { Flush(); }

  BatchedCounter(const BatchedCounter&) = delete;
  BatchedCounter& operator=(const BatchedCounter&) = delete;

  void Tick() { ++local_; }
  void Flush() {
    if (counter_ != nullptr && local_ != 0) {
      counter_->tests.fetch_add(local_, std::memory_order_relaxed);
      local_ = 0;
    }
  }

 private:
  DominanceCounter* counter_;
  int64_t local_ = 0;
};

}  // namespace internal
}  // namespace skyline
}  // namespace sparkline
