// Columnar dominance testing: the hot-loop representation behind the
// skyline operators.
//
// The paper calls dominance tests "the main cost factor of skyline
// computation" (section 2), yet a row-oriented test pays a tagged-union type
// dispatch, a null check and possibly a string comparison per dimension per
// test. A DominanceMatrix instead projects the skyline dimensions of an
// input *once* into a packed, normalized form:
//
//   - packed `double` keys, with MAX dimensions negated so every comparison
//     in the hot loop is a plain `<` (MIN); each row's keys are contiguous
//     (a d-dimensional tuple fits one or two cache lines, which is what a
//     pairwise dominance test actually touches),
//   - DIFF dimensions as dictionary codes (equality is all DIFF needs;
//     VARCHAR values are dictionary-encoded, numerics used verbatim),
//   - a per-row null bitmap (one bit per dimension, as in paper section 5.7).
//
// The kernels in this header run entirely over row *indices* into the
// matrix and materialize full Rows only for the final survivors; they are
// drop-in equivalents of the row kernels in algorithms.h and must produce
// identical results (tests/matrix_equivalence_test.cc enforces this).
//
// TryBuild refuses shapes whose double projection could change comparison
// results (BIGINT magnitudes beyond 2^53, NaN values) — callers then fall
// back to the row kernels, keeping correctness independent of the fast path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "common/result.h"
#include "skyline/algorithms.h"
#include "skyline/dominance.h"

// The explicit AVX2 dominance-test path needs x86 intrinsics plus a
// compiler that supports per-function target attributes (GCC/Clang). Other
// platforms compile the scalar loop only.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SPARKLINE_HAVE_AVX2_COMPARE 1
#else
#define SPARKLINE_HAVE_AVX2_COMPARE 0
#endif

namespace sparkline {
namespace skyline {

/// \brief Which index-based kernel to run (mirrors the exec layer's
/// SkylineKernel without depending on it).
enum class ColumnarKernel : uint8_t {
  kBlockNestedLoop,
  kSortFilterSkyline,
  kGridFilter,
};

/// \brief Raw dominance test over two packed key spans of `d` dimensions.
/// `diff_mask` has one bit per DIFF dimension (equality-only), `skip` one
/// bit per dimension to ignore (the union of the two null bitmaps under
/// incomplete semantics; 0 under complete semantics).
inline Dominance CompareKeySpans(const double* left, const double* right,
                                 size_t d, uint32_t diff_mask, uint32_t skip) {
  bool left_better = false;
  bool right_better = false;
  for (size_t i = 0; i < d; ++i) {
    if ((skip >> i) & 1u) continue;
    const double l = left[i];
    const double r = right[i];
    if (l == r) continue;
    if ((diff_mask >> i) & 1u) {
      // Any difference in a DIFF dimension makes the tuples incomparable.
      return Dominance::kIncomparable;
    }
    if (l < r) {
      if (right_better) return Dominance::kIncomparable;
      left_better = true;
    } else {
      if (left_better) return Dominance::kIncomparable;
      right_better = true;
    }
  }
  if (left_better) return Dominance::kLeftDominates;
  if (right_better) return Dominance::kRightDominates;
  return Dominance::kEqual;
}

/// \brief Branchless dominance test for the common case: complete
/// semantics, no DIFF dimensions. Accumulating the better-on-some-dimension
/// flags without per-dimension early exits leaves a single well-predicted
/// branch per test — measurably faster than the early-exit form on real
/// workloads even though it always scans all d dimensions. This is the
/// scalar reference; CompareKeySpansComplete dispatches to the explicit
/// AVX2 version when the CPU supports it.
inline Dominance CompareKeySpansCompleteScalar(const double* left,
                                               const double* right, size_t d) {
  bool left_better = false;
  bool right_better = false;
  for (size_t i = 0; i < d; ++i) {
    left_better |= left[i] < right[i];
    right_better |= right[i] < left[i];
  }
  if (left_better) {
    return right_better ? Dominance::kIncomparable : Dominance::kLeftDominates;
  }
  return right_better ? Dominance::kRightDominates : Dominance::kEqual;
}

namespace simd {
#if SPARKLINE_HAVE_AVX2_COMPARE
/// \brief Explicit AVX2 compare: both comparison directions run over four
/// dimensions per instruction with OR-accumulated masks, then one movemask
/// per direction. Keys are never NaN (TryBuild refuses them), so the
/// ordered predicate is exact. Only call when Avx2Available() is true.
/// Defined out-of-line with a per-function target attribute so the rest of
/// the binary keeps the baseline ISA.
Dominance CompareKeySpansCompleteAvx2(const double* left, const double* right,
                                      size_t d);

/// \brief Compile-time answer when built with -mavx2, one cached CPUID
/// probe otherwise.
inline bool Avx2Available() {
#if defined(__AVX2__)
  return true;
#else
  static const bool available = __builtin_cpu_supports("avx2");
  return available;
#endif
}
#endif  // SPARKLINE_HAVE_AVX2_COMPARE
}  // namespace simd

/// \brief Complete-case dominance test with SIMD dispatch: the AVX2 path
/// when compiled in and supported by this CPU (below 4 dimensions the
/// vector body would be all tail, so the scalar loop wins), the scalar
/// branchless loop otherwise. Results are identical on every path.
inline Dominance CompareKeySpansComplete(const double* left,
                                         const double* right, size_t d) {
#if SPARKLINE_HAVE_AVX2_COMPARE
  if (d >= 4 && simd::Avx2Available()) {
    return simd::CompareKeySpansCompleteAvx2(left, right, d);
  }
#endif
  return CompareKeySpansCompleteScalar(left, right, d);
}

/// \brief Projection of the skyline dimensions of an input relation into
/// packed key rows, normalized so every MIN/MAX comparison is "smaller is
/// better" over doubles.
class DominanceMatrix {
 public:
  /// Hard dimension cap: null bitmaps are 32-bit (see dominance.h).
  static constexpr size_t kMaxDims = 32;

  /// \brief Projects `rows` into columnar form. Returns nullopt when the
  /// shape is unsupported and the caller must use the row kernels:
  /// more than kMaxDims dimensions, NaN in a MIN/MAX dimension, or BIGINT
  /// values whose magnitude exceeds 2^53 (not exactly representable as
  /// double, so projection could flip a comparison).
  static std::optional<DominanceMatrix> TryBuild(
      const std::vector<Row>& rows, const std::vector<BoundDimension>& dims);

  size_t num_rows() const { return n_; }
  size_t num_dims() const { return d_; }

  /// Null bitmap of one row (bit i set = dimension i is NULL).
  uint32_t null_bitmap(uint32_t row) const {
    return nulls_.empty() ? 0 : nulls_[row];
  }
  bool has_nulls() const { return !nulls_.empty(); }

  /// True when every dimension is a numeric MIN/MAX — the precondition the
  /// row-oriented SFS and grid kernels require; mirrored here so kernel
  /// fallback decisions stay identical between the two paths.
  bool all_numeric_minmax() const { return numeric_minmax_; }

  /// The packed keys of one row (d contiguous doubles).
  const double* row_keys(uint32_t row) const { return keys_.data() + row * d_; }

  /// One key (valid for row < num_rows(), dim < num_dims()).
  double key(uint32_t row, size_t dim) const { return row_keys(row)[dim]; }

  /// Monotone SFS score: the sum of the (already negated-for-MAX) keys.
  /// If a dominates b then score(a) < score(b) strictly.
  double Score(uint32_t row) const {
    const double* keys = row_keys(row);
    double s = 0;
    for (size_t d = 0; d < d_; ++d) s += keys[d];
    return s;
  }

  /// Smallest normalized key of one row — SaLSa's minC sort function (the
  /// SfsSortKey::kMinMax primary key). Only meaningful for all-numeric
  /// MIN/MAX matrices without NULLs (NULL slots hold 0.0 placeholders).
  double MinKey(uint32_t row) const {
    const double* keys = row_keys(row);
    double lo = keys[0];
    for (size_t d = 1; d < d_; ++d) lo = std::min(lo, keys[d]);
    return lo;
  }

  /// Largest normalized key of one row — the stop-point coordinate a
  /// skyline point contributes: every tuple whose coordinates all strictly
  /// exceed MaxKey(p) is strictly dominated by p. Same preconditions as
  /// MinKey.
  double MaxKey(uint32_t row) const {
    const double* keys = row_keys(row);
    double hi = keys[0];
    for (size_t d = 1; d < d_; ++d) hi = std::max(hi, keys[d]);
    return hi;
  }

  /// Bitmask of DIFF dimensions (for CompareKeySpans callers).
  uint32_t diff_mask() const { return diff_mask_; }

  /// \brief Byte footprint of the projection: packed keys, null bitmaps and
  /// VARCHAR dictionary decode tables. This is what the exec layer charges
  /// to the query's MemoryTracker while a matrix lives.
  int64_t MemoryBytes() const;

  /// \brief Concatenates the *selected* rows of several independently built
  /// matrices into one compact matrix — the columnar shuffle primitive.
  /// Row r of the result is the selections[p][k]-th row of parts[p], in
  /// (part, selection) order. Packed keys and null bitmaps are copied;
  /// VARCHAR DIFF dictionary codes are remapped through the parts' decode
  /// tables into one unified dictionary (codes are only comparable within
  /// one matrix). No re-projection from row Values happens.
  ///
  /// \pre parts is non-empty, all parts share num_dims() and diff_mask()
  /// (they were projected with the same BoundDimension list), and every
  /// selection index is valid for its part.
  static DominanceMatrix ConcatSelected(
      const std::vector<const DominanceMatrix*>& parts,
      const std::vector<const std::vector<uint32_t>*>& selections);

  /// \brief Dominance between rows `i` and `j`, equivalent to CompareRows
  /// over the original rows. One call == one dominance test.
  Dominance Compare(uint32_t i, uint32_t j, NullSemantics nulls) const {
    const uint32_t skip =
        nulls == NullSemantics::kIncomplete ? null_bitmap(i) | null_bitmap(j)
                                            : 0;
    return CompareKeySpans(row_keys(i), row_keys(j), d_, diff_mask_, skip);
  }

 private:
  DominanceMatrix() = default;

  size_t n_ = 0;
  size_t d_ = 0;
  std::vector<double> keys_;    ///< row-major packed keys, n_ * d_ entries
  std::vector<uint32_t> nulls_; ///< per-row bitmaps; empty when fully complete
  uint32_t diff_mask_ = 0;      ///< bit per DIFF dimension
  bool numeric_minmax_ = false;
  /// Decode tables for dictionary-encoded VARCHAR DIFF dimensions:
  /// dicts_[dim][code] is the original string (empty vector for every other
  /// dimension). Retained so ConcatSelected can remap codes across
  /// independently built matrices.
  std::vector<std::vector<std::string>> dicts_;
};

/// \brief All row indices 0..n-1 (the identity selection for a kernel run
/// over the whole matrix).
std::vector<uint32_t> AllIndices(const DominanceMatrix& matrix);

// Preconditions shared by every Result-returning kernel below:
//
//   * The matrix must come from DominanceMatrix::TryBuild over the same
//     logical input the index selections refer to; all indices must be
//     < matrix.num_rows(). TryBuild enforces the kMaxDims (32) limit, so
//     the kernels do not re-check it.
//   * Keys are MIN/MAX-normalized at projection time: MAX dimensions are
//     negated, so "smaller is better" holds for every key and the kernels
//     never consult SkylineGoal again. DIFF dimensions are
//     equality-only dictionary codes, flagged in diff_mask().
//   * `options.nulls` selects the semantics exactly as in algorithms.h;
//     under kIncomplete each comparison skips the union of the two rows'
//     null bitmaps. The BNL kernel additionally requires bitmap-uniform
//     input under kIncomplete (see BlockNestedLoop).
//   * With `options.deadline_nanos` set, kernels return Status::Timeout
//     soon after the deadline; partial results are discarded.

/// \brief Index-based Block-Nested-Loop over `input` (indices into the
/// matrix, processed in order). Same window policy as BlockNestedLoop.
Result<std::vector<uint32_t>> ColumnarBlockNestedLoop(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input,
    const SkylineOptions& options);

/// \brief Index-based Sort-Filter-Skyline. Falls back to
/// ColumnarBlockNestedLoop under incomplete semantics or when any dimension
/// is not a numeric MIN/MAX (the same conditions as the row kernel). Sorts
/// by options.sfs_sort_key; with options.sfs_early_stop the filter pass
/// terminates at the SaLSa stop point (auto-disabled when the matrix has
/// NULL bitmaps — results are identical either way).
Result<std::vector<uint32_t>> ColumnarSortFilterSkyline(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input,
    const SkylineOptions& options);

/// \brief True when ColumnarSortFilterSkyline runs its presort fast path on
/// this matrix (rather than falling back to BNL) — which also means its
/// result view is ascending in DominanceMatrix::Score. The exec layer uses
/// this to tag batches as score-sorted for SFS-order inheritance.
inline bool SfsFastPathApplicable(const DominanceMatrix& matrix,
                                  const SkylineOptions& options) {
  return options.nulls == NullSemantics::kComplete &&
         matrix.all_numeric_minmax();
}

/// \brief Sort-Filter-Skyline over input that is *already* ascending in the
/// active sort key (options.sfs_sort_key) — the inherited-order variant the
/// merge stage runs when its input views come from upstream SFS stages,
/// skipping the re-sort entirely. Honours options.sfs_early_stop and any
/// inherited options.sfs_stop_bound (the tightest per-partition bound the
/// gathered batch carries), so a presorted merge can terminate before
/// scanning most of the gathered input.
///
/// \pre SfsFastPathApplicable(matrix, options) holds and `input` is
/// ascending in the active sort key (equal keys in the caller's intended
/// tie-break order; the window-only-grows argument needs nothing stronger
/// than an ascending monotone key).
Result<std::vector<uint32_t>> ColumnarSortFilterSkylinePresorted(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input,
    const SkylineOptions& options);

/// \brief Merges key-ascending index runs into one key-ascending vector
/// (O(n · k) cascade of stable merges; ties keep earlier runs first, so
/// merging per-partition SFS outputs reproduces the tie-break order of one
/// global stable sort over the concatenated input). `sort_key` selects the
/// comparator: Score for kSum, (MinKey, Score) lexicographic for kMinMax —
/// it must match the key the runs were sorted with.
std::vector<uint32_t> MergeByScore(const DominanceMatrix& matrix,
                                   const std::vector<std::vector<uint32_t>>& runs,
                                   SfsSortKey sort_key = SfsSortKey::kSum);

/// \brief The tightest SaLSa stop bound a (skyline) result view supports:
/// the smallest MaxKey over the view's rows (+infinity for an empty view or
/// a matrix with NULL bitmaps, which cannot certify coordinate bounds).
/// Since the point minimizing the max-coordinate of any input always has a
/// skyline representative with an equal-or-smaller max-coordinate, the
/// bound computed over a skyline equals the bound over its full input.
double ComputeStopBound(const DominanceMatrix& matrix,
                        const std::vector<uint32_t>& view);

/// \brief The pre-gather broadcast filter set (two-phase distributed
/// pruning): the packed normalized keys of a few strong skyline points,
/// nominated per partition and unioned. Because keys are MIN/MAX-normalized
/// at projection time, they are comparable *across* independently built
/// matrices — unlike DIFF dictionary codes — so a point nominated from one
/// partition's matrix prunes rows of every other partition directly via
/// CompareKeySpansComplete. Valid only for all-numeric MIN/MAX matrices
/// without NULL bitmaps and with diff_mask() == 0; producers must check.
struct FilterPointSet {
  size_t num_dims = 0;
  /// Row-major packed keys, num_points() * num_dims entries.
  std::vector<double> keys;

  size_t num_points() const {
    return num_dims == 0 ? 0 : keys.size() / num_dims;
  }
  const double* point(size_t i) const { return keys.data() + i * num_dims; }
};

/// \brief Nominates up to `k` rows of `view` with the smallest MaxKey — the
/// SaLSa minmax-best tuples, whose stop-point coordinate makes them the
/// strongest single-point pruners a partition can offer — and appends their
/// packed keys to `out` (initializing out->num_dims on first use).
///
/// \pre the matrix is all-numeric MIN/MAX, NULL-free, diff_mask() == 0
/// (MinKey/MaxKey preconditions); `view` holds valid row indices.
void NominateFilterPoints(const DominanceMatrix& matrix,
                          const std::vector<uint32_t>& view, size_t k,
                          FilterPointSet* out);

/// \brief Returns the sub-view of `view` whose rows are not *strictly*
/// dominated by any filter point. kEqual never eliminates: a nominated
/// point meeting itself survives, and under DISTINCT the first-encountered
/// tie-break belongs to the merge stage, which only works if ties still
/// reach it — strict-only elimination is what keeps this sound for both
/// DISTINCT settings (see docs/ARCHITECTURE.md). Each comparison counts as
/// one dominance test in options.counter; honours options.deadline_nanos.
///
/// \pre same matrix preconditions as NominateFilterPoints, and
/// filter.num_dims == matrix.num_dims().
Result<std::vector<uint32_t>> PruneAgainstFilter(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& view,
    const FilterPointSet& filter, const SkylineOptions& options);

/// \brief Index-based grid-filter skyline: cell-level pruning over the
/// normalized keys (all dimensions MIN after negation, so no bucket
/// mirroring is needed), then ColumnarBlockNestedLoop over the survivors.
/// Falls back to plain BNL under the row kernel's conditions, plus when
/// dimensions exceed 16 (cell keys pack 4 bits per dimension).
Result<std::vector<uint32_t>> ColumnarGridFilterSkyline(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input,
    const SkylineOptions& options);

/// \brief Index-based all-pairs incomplete skyline with deferred deletion
/// (paper section 5.7 / Appendix A), equivalent to AllPairsIncomplete.
Result<std::vector<uint32_t>> ColumnarAllPairsIncomplete(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input,
    const SkylineOptions& options);

/// \brief Columnar candidate stage of the round-based parallel incomplete
/// global skyline (the counterpart of IncompleteCandidateScan): all-pairs
/// with deferred deletion restricted to `chunk`, reusing the matrix's
/// per-row null bitmaps for the restricted comparisons. Returns the
/// surviving chunk indices in input order. Since a chunk is an ascending
/// slice of the gathered input, index order doubles as the global DISTINCT
/// tie-break order.
///
/// \pre `chunk` holds valid, ascending matrix row indices.
Result<std::vector<uint32_t>> ColumnarIncompleteCandidateScan(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& chunk,
    const SkylineOptions& options);

/// \brief Columnar validation round (the counterpart of
/// ValidateAgainstChunk): keeps the candidates for which `peer` — one
/// rotating chunk's *full* index set, not its candidate set — contains no
/// dominating witness; under DISTINCT an equal peer tuple with the same
/// null bitmap and a smaller matrix index also eliminates. Peer rows are
/// read-only, so rounds over disjoint candidate sets can run in parallel.
///
/// \pre `candidates` and `peer` hold valid matrix row indices; matrix row
/// order must be the global input order (the DISTINCT tie-break).
Result<std::vector<uint32_t>> ColumnarValidateAgainstChunk(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& candidates,
    const std::vector<uint32_t>& peer, const SkylineOptions& options);

/// \brief Groups all matrix rows by their null bitmap, in ascending bitmap
/// order (the index analog of PartitionByNullBitmap). Input order is
/// preserved within each group.
std::vector<std::vector<uint32_t>> PartitionIndicesByNullBitmap(
    const DominanceMatrix& matrix);

/// \brief Same, restricted to the given view (used by batch-aware stages
/// that operate on a survivor view rather than the whole matrix).
std::vector<std::vector<uint32_t>> PartitionIndicesByNullBitmap(
    const DominanceMatrix& matrix, const std::vector<uint32_t>& input);

/// \brief Materializes the selected rows (in index order) from the original
/// input.
std::vector<Row> MaterializeRows(const std::vector<Row>& input,
                                 const std::vector<uint32_t>& indices);

/// \brief Runs the chosen index kernel over an existing matrix view — the
/// batch-aware counterpart of ColumnarSkyline. Complete semantics dispatch
/// the kernel directly; incomplete semantics run one BNL per bitmap-uniform
/// group of the view (the local-stage contract of paper section 5.7).
/// Returns the surviving sub-view.
Result<std::vector<uint32_t>> RunColumnarKernel(
    ColumnarKernel kernel, const DominanceMatrix& matrix,
    const std::vector<uint32_t>& input, const SkylineOptions& options);

/// \brief The unit the columnar exchange ships between skyline stages: one
/// immutable, shared DominanceMatrix over a set of backing rows (matrix row
/// i is the projection of backing row i) plus a row-index *view* selecting
/// the live subset, and an optional inherited SFS sort order.
///
/// Ownership rules: matrix, backing rows and the memory reservation are
/// shared (shared_ptr) and never mutated after construction; copying a
/// batch copies only the view vector. A batch therefore stays valid no
/// matter which operator created it or how many views alias it, and the
/// matrix bytes stay charged to the query's MemoryTracker until the last
/// view dies.
class ColumnarBatch {
 public:
  /// \brief Projects `rows` once — the only projection this partition pays
  /// on the columnar-exchange path. Returns nullopt when TryBuild refuses
  /// the shape (the caller then stays on the row path; it may keep using
  /// *rows). Matrix storage is charged to `memory` (if non-null) for the
  /// matrix's lifetime. The backing rows are semantically immutable while
  /// any view aliases them; the non-const element type only exists so an
  /// exclusively owned backing can be *moved* out by Concat /
  /// DecodeConsuming instead of copied.
  static std::optional<ColumnarBatch> Project(
      std::shared_ptr<std::vector<Row>> rows,
      const std::vector<BoundDimension>& dims, MemoryTracker* memory = nullptr);

  /// \brief The columnar shuffle: concatenates the parts' *selected* rows
  /// into one compact batch via DominanceMatrix::ConcatSelected (key/bitmap
  /// copy + dictionary remap — no re-projection). The backing rows of the
  /// result are the selected rows materialized in view order — exactly the
  /// rows a row-mode gather would have shipped, so matrix row order equals
  /// gathered input order (the DISTINCT tie-break order downstream stages
  /// rely on). If every part is score-sorted with the same sort key, the
  /// merged view is produced by MergeByScore and stays score-sorted
  /// (SFS-order inheritance across the exchange). The result's stop bound
  /// is the minimum over the parts' bounds — every part's witness row is
  /// shipped, so the tightest local bound survives the gather. A single
  /// part is compacted the same way, so the upstream stage's non-survivor
  /// rows never travel past the exchange.
  ///
  /// The parts are consumed (backings moved out where exclusively owned)
  /// but deliberately left alive in the caller's vector: destroying the old
  /// backings — every non-survivor row of the upstream stage — is real
  /// work, and the caller decides where it lands (the exec layer drops them
  /// outside the timed stage, exactly where the row pipeline destroys its
  /// consumed inputs).
  ///
  /// \pre parts non-empty, all projected with the same dimension list.
  static ColumnarBatch Concat(std::vector<ColumnarBatch>* parts,
                              MemoryTracker* memory = nullptr);

  /// A derived view over the same matrix/rows (e.g. the survivors of a
  /// kernel run). `score_sorted` asserts the new view is ascending in
  /// `sort_key`; `stop_bound` is the SaLSa stop bound the view's rows
  /// support (ComputeStopBound; +infinity = none), carried so the global
  /// merge can inherit the tightest per-partition bound.
  ColumnarBatch WithSelection(
      std::vector<uint32_t> indices, bool score_sorted,
      SfsSortKey sort_key = SfsSortKey::kSum,
      double stop_bound = std::numeric_limits<double>::infinity()) const;

  /// Contiguous sub-view [begin, end) of the current view, inheriting the
  /// sort flag (a slice of an ascending view is ascending) and stop bound.
  ColumnarBatch Slice(size_t begin, size_t end) const;

  const DominanceMatrix& matrix() const { return *matrix_; }
  const std::vector<uint32_t>& indices() const { return indices_; }
  size_t num_rows() const { return indices_.size(); }
  bool score_sorted() const { return score_sorted_; }
  /// The key the view is sorted by; meaningful only when score_sorted().
  SfsSortKey sort_key() const { return sort_key_; }
  /// Tightest inherited SaLSa stop bound (+infinity = none). Its witness is
  /// a row of this batch (or of an upstream batch of the same relation), so
  /// downstream SFS passes over supersets of this view may seed their minC
  /// with it.
  double stop_bound() const { return stop_bound_; }
  const std::vector<Row>& backing_rows() const { return *rows_; }

  /// \brief True when this batch was projected for exactly these skyline
  /// dimensions (ordinals and goals). A consumer whose dimensions differ —
  /// e.g. the outer operator of a nested skyline receiving the inner
  /// skyline's batch — must decode and re-project instead of reusing a
  /// matrix that encodes the wrong columns.
  bool ProjectedFor(const std::vector<BoundDimension>& dims) const {
    if (dims.size() != dims_.size()) return false;
    for (size_t i = 0; i < dims.size(); ++i) {
      if (dims[i].ordinal != dims_[i].ordinal || dims[i].goal != dims_[i].goal) {
        return false;
      }
    }
    return true;
  }

  /// Materializes the view's rows — the plan-root decode (or the row
  /// fallback when a non-skyline operator consumes the relation).
  std::vector<Row> Decode() const { return MaterializeRows(*rows_, indices_); }

  /// \brief Decode that destroys the batch: when this view is the backing's
  /// sole owner the selected rows are *moved* out (matching the row
  /// pipeline, whose stages move rather than copy); aliased backings fall
  /// back to Decode's copy.
  ///
  /// \pre the view's indices are pairwise distinct (every survivor view the
  /// skyline pipeline produces is).
  std::vector<Row> DecodeConsuming() &&;

 private:
  ColumnarBatch() = default;

  std::shared_ptr<const DominanceMatrix> matrix_;
  /// Backing rows; matrix row i == (*rows_)[i]. Semantically immutable —
  /// non-const only so exclusive owners can move rows out (see Project).
  std::shared_ptr<std::vector<Row>> rows_;
  std::shared_ptr<const ScopedReservation> reservation_;  ///< matrix bytes
  std::vector<BoundDimension> dims_;  ///< what the matrix was projected for
  std::vector<uint32_t> indices_;  ///< the view, in processing order
  bool score_sorted_ = false;
  /// Key the view is ascending in (valid when score_sorted_).
  SfsSortKey sort_key_ = SfsSortKey::kSum;
  /// Tightest SaLSa stop bound of the view (+infinity = none).
  double stop_bound_ = std::numeric_limits<double>::infinity();
};

/// \brief Convenience end-to-end entry: builds the matrix, runs the chosen
/// kernel under complete semantics (or bitmap-grouped BNL + the local stage
/// contract under incomplete semantics), and materializes survivors. Falls
/// back to the row kernels when TryBuild refuses the input. This is what
/// RunKernel in the exec layer calls.
Result<std::vector<Row>> ColumnarSkyline(ColumnarKernel kernel,
                                         const std::vector<Row>& input,
                                         const std::vector<BoundDimension>& dims,
                                         const SkylineOptions& options);

/// \brief End-to-end all-pairs global skyline for incomplete data, with row
/// fallback (the columnar counterpart of AllPairsIncomplete).
Result<std::vector<Row>> ColumnarAllPairsSkyline(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims,
    const SkylineOptions& options);

/// \brief Outcome of classifying a batch of inserted tuples against an
/// already-computed skyline (the incremental-maintenance kernel,
/// serve/incremental.h).
struct DeltaClassification {
  /// Batch indices (ascending) whose tuples enter the skyline.
  std::vector<uint32_t> entering;
  /// Skyline indices (ascending) evicted because an entering tuple
  /// dominates them.
  std::vector<uint32_t> evicted;
  /// True when exactness cannot be certified and the caller must fall back
  /// to recompute/invalidation: a NULL in a skyline dimension (complete
  /// semantics over NULL placeholders is not what the engine's row path
  /// computes), or — under DISTINCT — a batch tuple dim-equal to a cached
  /// point or to another batch tuple (replaying the first-encountered
  /// tie-break exactly would require the full input order, which the
  /// cached skyline no longer carries).
  bool needs_fallback = false;
};

/// \brief Classifies `batch` against `skyline` under complete dominance
/// semantics: a batch tuple dominated by a cached point (or by another
/// batch tuple) is discarded; the rest enter and evict the cached points
/// they dominate. Exactness (tests/incremental_test.cc proves it
/// differentially): because complete dominance is transitive and `skyline`
/// is the skyline of its input T, any old tuple dominating a batch tuple q
/// has a representative in `skyline` dominating q, so comparing against the
/// cached skyline alone suffices — skyline(T ∪ B) =
/// (skyline \ evicted) ∪ entering. This is NOT sound under incomplete
/// semantics (non-transitive dominance: a dominated non-skyline tuple can
/// dominate q while no skyline point does), so options.nulls must be
/// kComplete — kIncomplete is rejected with Status::Invalid.
///
/// Uses one combined DominanceMatrix projection (skyline rows then batch
/// rows) with the packed-key compare kernel, falling back to row
/// comparisons when TryBuild refuses the shape. Cost: O((|S| + |B|)·|B|)
/// dominance tests — independent of the table size.
Result<DeltaClassification> DeltaClassify(const std::vector<Row>& skyline,
                                          const std::vector<Row>& batch,
                                          const std::vector<BoundDimension>& dims,
                                          const SkylineOptions& options);

}  // namespace skyline
}  // namespace sparkline
