#include "skyline/algorithms.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "skyline/kernel_common.h"

namespace sparkline {
namespace skyline {

using internal::CountTest;
using internal::DeadlineChecker;

Result<std::vector<Row>> BlockNestedLoop(const std::vector<Row>& input,
                                         const std::vector<BoundDimension>& dims,
                                         const SkylineOptions& options) {
  SL_RETURN_NOT_OK(CheckDimensionLimit(dims));
  std::vector<Row> window;
  DeadlineChecker deadline(options);
  for (const Row& tuple : input) {
    bool eliminated = false;
    size_t i = 0;
    while (i < window.size()) {
      SL_RETURN_NOT_OK(deadline.Check());
      CountTest(options);
      const Dominance dom = CompareRows(tuple, window[i], dims, options.nulls);
      if (dom == Dominance::kRightDominates ||
          (dom == Dominance::kEqual && options.distinct)) {
        // The newcomer is dominated (or a duplicate under DISTINCT). By
        // transitivity it cannot dominate anything else in the window.
        eliminated = true;
        break;
      }
      if (dom == Dominance::kLeftDominates) {
        // Remove the dominated window tuple (swap-erase keeps this O(1); the
        // window is an unordered set of candidates).
        window[i] = std::move(window.back());
        window.pop_back();
        continue;  // re-examine the swapped-in element at index i
      }
      ++i;
    }
    if (!eliminated) window.push_back(tuple);
  }
  return window;
}

Result<std::vector<Row>> AllPairsIncomplete(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims,
    const SkylineOptions& options) {
  SL_RETURN_NOT_OK(CheckDimensionLimit(dims));
  const size_t n = input.size();
  std::vector<char> dominated(n, 0);
  std::vector<uint32_t> bitmaps(n);
  for (size_t i = 0; i < n; ++i) bitmaps[i] = NullBitmap(input[i], dims);

  DeadlineChecker deadline(options);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      // A dominated tuple may still dominate others (Appendix A), so flagged
      // tuples must keep participating; only pairs where both are already
      // flagged are irrelevant. The deadline ticks before the skip so a
      // mostly-flagged quadratic scan still times out.
      SL_RETURN_NOT_OK(deadline.Check());
      if (dominated[i] && dominated[j]) continue;
      CountTest(options);
      const Dominance dom = CompareRows(input[i], input[j], dims, options.nulls);
      switch (dom) {
        case Dominance::kLeftDominates:
          dominated[j] = 1;
          break;
        case Dominance::kRightDominates:
          dominated[i] = 1;
          break;
        case Dominance::kEqual:
          // Duplicates (same null pattern, same values) collapse under
          // DISTINCT; with different null patterns "equal on common
          // dimensions" is not equality, so both survive.
          if (options.distinct && bitmaps[i] == bitmaps[j]) dominated[j] = 1;
          break;
        case Dominance::kIncomparable:
          break;
      }
    }
  }
  // Deferred deletion: only now drop the flagged tuples.
  std::vector<Row> result;
  for (size_t i = 0; i < n; ++i) {
    if (!dominated[i]) result.push_back(input[i]);
  }
  return result;
}

Result<std::vector<uint32_t>> IncompleteCandidateScan(
    const std::vector<Row>& input, size_t begin, size_t end,
    const std::vector<BoundDimension>& dims, const SkylineOptions& options) {
  SL_RETURN_NOT_OK(CheckDimensionLimit(dims));
  if (begin > end || end > input.size()) {
    return Status::Invalid("candidate scan chunk out of range");
  }
  if (input.size() > UINT32_MAX) {
    return Status::Invalid("candidate scan input exceeds uint32 indexing");
  }
  const size_t n = end - begin;
  std::vector<char> dominated(n, 0);
  std::vector<uint32_t> bitmaps(n);
  for (size_t i = 0; i < n; ++i) bitmaps[i] = NullBitmap(input[begin + i], dims);

  // Same pair scan as AllPairsIncomplete, restricted to the chunk: flagged
  // tuples keep participating (they may still dominate), deletion is
  // deferred to the end.
  DeadlineChecker deadline(options);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      SL_RETURN_NOT_OK(deadline.Check());
      if (dominated[i] && dominated[j]) continue;
      CountTest(options);
      const Dominance dom =
          CompareRows(input[begin + i], input[begin + j], dims, options.nulls);
      switch (dom) {
        case Dominance::kLeftDominates:
          dominated[j] = 1;
          break;
        case Dominance::kRightDominates:
          dominated[i] = 1;
          break;
        case Dominance::kEqual:
          if (options.distinct && bitmaps[i] == bitmaps[j]) dominated[j] = 1;
          break;
        case Dominance::kIncomparable:
          break;
      }
    }
  }
  std::vector<uint32_t> candidates;
  for (size_t i = 0; i < n; ++i) {
    if (!dominated[i]) candidates.push_back(static_cast<uint32_t>(begin + i));
  }
  return candidates;
}

Result<std::vector<uint32_t>> ValidateAgainstChunk(
    const std::vector<Row>& input, const std::vector<uint32_t>& candidates,
    size_t peer_begin, size_t peer_end,
    const std::vector<BoundDimension>& dims, const SkylineOptions& options) {
  SL_RETURN_NOT_OK(CheckDimensionLimit(dims));
  if (peer_begin > peer_end || peer_end > input.size()) {
    return Status::Invalid("validation peer chunk out of range");
  }
  DeadlineChecker deadline(options);
  std::vector<uint32_t> survivors;
  survivors.reserve(candidates.size());
  for (const uint32_t c : candidates) {
    const uint32_t bitmap =
        options.distinct ? NullBitmap(input[c], dims) : 0;
    bool eliminated = false;
    // Early exit on the first witness is sound here (unlike the all-pairs
    // scan): peer tuples are never eliminated by this pass, so no flag
    // interplay exists — a witness is final.
    for (size_t t = peer_begin; t < peer_end && !eliminated; ++t) {
      SL_RETURN_NOT_OK(deadline.Check());
      CountTest(options);
      const Dominance dom = CompareRows(input[t], input[c], dims, options.nulls);
      if (dom == Dominance::kLeftDominates) {
        eliminated = true;  // witness: input[t]
      } else if (dom == Dominance::kEqual && options.distinct && t < c &&
                 NullBitmap(input[t], dims) == bitmap) {
        // DISTINCT keeps the globally first of a duplicate group; equal
        // tuples with equal bitmaps are dominated by exactly the same
        // witnesses, so this agrees with the sequential algorithm whether
        // or not the earlier duplicate itself survives.
        eliminated = true;
      }
    }
    if (!eliminated) survivors.push_back(c);
  }
  return survivors;
}

Result<std::vector<Row>> SortFilterSkyline(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims,
    const SkylineOptions& options) {
  SL_RETURN_NOT_OK(CheckDimensionLimit(dims));
  if (options.nulls != NullSemantics::kComplete) {
    return BlockNestedLoop(input, dims, options);
  }
  for (const auto& d : dims) {
    if (d.goal == SkylineGoal::kDiff) return BlockNestedLoop(input, dims, options);
    if (!input.empty() && !input[0][d.ordinal].type().is_numeric()) {
      return BlockNestedLoop(input, dims, options);
    }
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const size_t num_dims = dims.size();

  // Per-row key summaries over the MIN-normalized values (MAX negated):
  // the sum (strictly monotone under dominance), the smallest coordinate
  // (the kMinMax primary key / SaLSa minC function) and the largest
  // coordinate (the stop-point bound a skyline point contributes). The
  // per-dimension maxima convert the sum key into coordinate space for the
  // kSum stop test. NULLs make coordinate bounds meaningless, so any NULL
  // disables the early stop (the filter pass itself keeps the pre-existing
  // behaviour).
  std::vector<double> scores(input.size()), min_coord(input.size()),
      max_coord(input.size());
  std::vector<double> dim_hi(num_dims, -kInf);
  bool any_null = false;
  for (size_t i = 0; i < input.size(); ++i) {
    double s = 0, lo = kInf, hi = -kInf;
    for (size_t d = 0; d < num_dims; ++d) {
      const Value& value = input[i][dims[d].ordinal];
      if (value.is_null()) {
        any_null = true;
        continue;
      }
      const double v = dims[d].goal == SkylineGoal::kMin ? value.ToDouble()
                                                         : -value.ToDouble();
      s += v;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      dim_hi[d] = std::max(dim_hi[d], v);
    }
    scores[i] = s;
    min_coord[i] = lo;
    max_coord[i] = hi;
  }

  const SfsSortKey sort_key = options.sfs_sort_key;
  std::vector<size_t> order(input.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (sort_key == SfsSortKey::kMinMax && min_coord[a] != min_coord[b]) {
      return min_coord[a] < min_coord[b];
    }
    return scores[a] < scores[b];
  });

  const bool early_stop = options.sfs_early_stop && !any_null;
  // kSum stop test: sum(t) only lower-bounds a coordinate via the other
  // dimensions' maxima (t_j >= sum(t) - sum_{k != j} hi_k), so the bound in
  // sort-key space is minC + max_j sum_{k != j} hi_k = minC + (sum(hi) -
  // min(hi)). kMinMax compares the min coordinate against minC directly.
  double sum_offset = 0;
  if (early_stop && sort_key == SfsSortKey::kSum && !input.empty()) {
    double total = 0, min_hi = kInf;
    for (const double hi : dim_hi) {
      total += hi;
      min_hi = std::min(min_hi, hi);
    }
    sum_offset = total - min_hi;
  }

  double min_c = early_stop ? options.sfs_stop_bound : kInf;
  std::vector<Row> window;
  DeadlineChecker deadline(options);
  for (size_t pos = 0; pos < order.size(); ++pos) {
    const size_t idx = order[pos];
    SL_RETURN_NOT_OK(deadline.Check());
    if (early_stop) {
      // Stop point: every coordinate of every remaining tuple strictly
      // exceeds minC, so the skyline point with max-coordinate minC
      // strictly dominates them all. Strict-only elimination keeps equal
      // tuples, so DISTINCT semantics are unaffected.
      const double key =
          sort_key == SfsSortKey::kMinMax ? min_coord[idx] : scores[idx];
      const double bound =
          sort_key == SfsSortKey::kMinMax ? min_c : min_c + sum_offset;
      if (key > bound) {
        if (options.early_stop != nullptr) {
          options.early_stop->rows_skipped.fetch_add(
              static_cast<int64_t>(order.size() - pos),
              std::memory_order_relaxed);
          options.early_stop->stops.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
    }
    const Row& tuple = input[idx];
    bool eliminated = false;
    for (const Row& w : window) {
      SL_RETURN_NOT_OK(deadline.Check());
      CountTest(options);
      const Dominance dom = CompareRows(w, tuple, dims, options.nulls);
      if (dom == Dominance::kLeftDominates ||
          (dom == Dominance::kEqual && options.distinct)) {
        eliminated = true;
        break;
      }
    }
    // Presorting guarantees no later tuple dominates an earlier one, so the
    // window only ever grows and each member is final skyline output.
    if (!eliminated) {
      window.push_back(tuple);
      min_c = std::min(min_c, max_coord[idx]);
    }
  }
  return window;
}

Result<std::vector<Row>> GridFilterSkyline(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims,
    const SkylineOptions& options) {
  SL_RETURN_NOT_OK(CheckDimensionLimit(dims));
  const size_t n = input.size();
  // Cell keys pack 4 bits per dimension into a uint64_t; beyond 16
  // dimensions `key = (key << 4) | bucket` would silently wrap, merging
  // unrelated cells and wrongly eliminating tuples — fall back to BNL.
  if (options.nulls != NullSemantics::kComplete || n < 64 ||
      dims.size() > 16) {
    return BlockNestedLoop(input, dims, options);
  }
  for (const auto& d : dims) {
    if (d.goal == SkylineGoal::kDiff ||
        !input[0][d.ordinal].type().is_numeric()) {
      return BlockNestedLoop(input, dims, options);
    }
  }
  const size_t num_dims = dims.size();
  // Roughly n^(1/d) buckets per dimension, clamped to [2, 16] so cell keys
  // pack into 4 bits per dimension.
  size_t buckets = static_cast<size_t>(
      std::round(std::pow(static_cast<double>(n), 1.0 / num_dims)));
  buckets = std::min<size_t>(16, std::max<size_t>(2, buckets));

  std::vector<double> lo(num_dims), hi(num_dims);
  for (size_t d = 0; d < num_dims; ++d) {
    lo[d] = hi[d] = input[0][dims[d].ordinal].ToDouble();
  }
  for (const Row& r : input) {
    for (size_t d = 0; d < num_dims; ++d) {
      const double v = r[dims[d].ordinal].ToDouble();
      lo[d] = std::min(lo[d], v);
      hi[d] = std::max(hi[d], v);
    }
  }

  // Bucket index per dimension with "lower index = better": floor bucketing
  // for MIN, mirrored for MAX. Floor bucketing makes the strictness
  // argument work: a point in bucket b is strictly below the lower edge of
  // bucket b+1, so cell A < cell B in every dimension implies every point
  // of A strictly dominates every point of B.
  auto bucket_of = [&](const Row& r, size_t d) -> uint64_t {
    const double width = (hi[d] - lo[d]) / static_cast<double>(buckets);
    if (width <= 0) return 0;
    const double v = r[dims[d].ordinal].ToDouble();
    auto b = static_cast<size_t>((v - lo[d]) / width);
    if (b >= buckets) b = buckets - 1;
    return dims[d].goal == SkylineGoal::kMax ? (buckets - 1 - b) : b;
  };
  auto cell_key = [&](const Row& r) {
    uint64_t key = 0;
    for (size_t d = 0; d < num_dims; ++d) {
      key = (key << 4) | bucket_of(r, d);
    }
    return key;
  };

  std::map<uint64_t, std::vector<const Row*>> cells;
  for (const Row& r : input) cells[cell_key(r)].push_back(&r);
  if (cells.size() > 4096) {
    // Too fragmented for the quadratic cell pass to pay off.
    return BlockNestedLoop(input, dims, options);
  }

  auto unpack = [&](uint64_t key, size_t d) {
    return (key >> (4 * (num_dims - 1 - d))) & 0xf;
  };
  std::vector<uint64_t> keys;
  keys.reserve(cells.size());
  for (const auto& [key, rows] : cells) keys.push_back(key);

  std::vector<Row> survivors;
  DeadlineChecker deadline(options);
  for (uint64_t key : keys) {
    bool eliminated = false;
    for (uint64_t other : keys) {
      SL_RETURN_NOT_OK(deadline.Check());
      if (other == key) continue;
      bool strictly_better_everywhere = true;
      for (size_t d = 0; d < num_dims; ++d) {
        if (unpack(other, d) >= unpack(key, d)) {
          strictly_better_everywhere = false;
          break;
        }
      }
      if (strictly_better_everywhere) {
        eliminated = true;
        break;
      }
    }
    if (!eliminated) {
      for (const Row* r : cells[key]) survivors.push_back(*r);
    }
  }
  return BlockNestedLoop(survivors, dims, options);
}

std::vector<Row> FlawedGulzarGlobal(const std::vector<Row>& input,
                                    const std::vector<BoundDimension>& dims) {
  // sl-lint: allow(kernel-deadline) — deliberately-flawed reference
  // implementation reproduced for the paper's counterexample tests only;
  // it never runs inside a query and takes no SkylineOptions to poll.
  // Cluster by null bitmap, in bitmap order (the order is immaterial for the
  // flaw; any fixed order exhibits it).
  std::map<uint32_t, std::vector<Row>> clusters;
  for (const Row& r : input) clusters[NullBitmap(r, dims)].push_back(r);

  std::vector<std::vector<Row>> cluster_list;
  for (auto& [bitmap, rows] : clusters) cluster_list.push_back(std::move(rows));
  std::vector<std::vector<char>> deleted(cluster_list.size());
  for (size_t c = 0; c < cluster_list.size(); ++c) {
    deleted[c].assign(cluster_list[c].size(), 0);
  }

  for (size_t ci = 0; ci < cluster_list.size(); ++ci) {
    for (size_t pi = 0; pi < cluster_list[ci].size(); ++pi) {
      if (deleted[ci][pi]) continue;
      bool flagged = false;
      for (size_t cj = ci + 1; cj < cluster_list.size(); ++cj) {
        for (size_t qj = 0; qj < cluster_list[cj].size(); ++qj) {
          if (deleted[cj][qj]) continue;
          const Dominance dom =
              CompareRows(cluster_list[ci][pi], cluster_list[cj][qj], dims,
                          NullSemantics::kIncomplete);
          if (dom == Dominance::kLeftDominates) {
            // THE FLAW: eager deletion; q can no longer eliminate anyone.
            deleted[cj][qj] = 1;
          } else if (dom == Dominance::kRightDominates) {
            flagged = true;
          }
        }
      }
      if (flagged) deleted[ci][pi] = 1;
    }
  }
  std::vector<Row> result;
  for (size_t c = 0; c < cluster_list.size(); ++c) {
    for (size_t i = 0; i < cluster_list[c].size(); ++i) {
      if (!deleted[c][i]) result.push_back(cluster_list[c][i]);
    }
  }
  return result;
}

std::vector<Row> BruteForceSkyline(const std::vector<Row>& input,
                                   const std::vector<BoundDimension>& dims,
                                   const SkylineOptions& options) {
  // sl-lint: allow(kernel-deadline) — infallible-by-contract oracle (tests
  // and the maintainer's subscription resync); its std::vector return
  // cannot propagate a Status, and resync batches are already bounded by
  // sparkline.cache.max_delta_batch upstream.
  std::vector<Row> result;
  std::vector<uint32_t> bitmaps(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    bitmaps[i] = NullBitmap(input[i], dims);
  }
  for (size_t i = 0; i < input.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < input.size() && !dominated; ++j) {
      if (i == j) continue;
      CountTest(options);
      const Dominance dom =
          CompareRows(input[j], input[i], dims, options.nulls);
      if (dom == Dominance::kLeftDominates) dominated = true;
      if (options.distinct && dom == Dominance::kEqual && j < i &&
          bitmaps[i] == bitmaps[j]) {
        dominated = true;  // keep only the first of a duplicate group
      }
    }
    if (!dominated) result.push_back(input[i]);
  }
  return result;
}

std::vector<std::vector<Row>> PartitionByNullBitmap(
    const std::vector<Row>& input, const std::vector<BoundDimension>& dims) {
  std::map<uint32_t, std::vector<Row>> groups;
  for (const Row& r : input) groups[NullBitmap(r, dims)].push_back(r);
  std::vector<std::vector<Row>> out;
  out.reserve(groups.size());
  for (auto& [bitmap, rows] : groups) out.push_back(std::move(rows));
  return out;
}

Result<std::vector<Row>> BitmapGroupedBnl(const std::vector<Row>& input,
                                          const std::vector<BoundDimension>& dims,
                                          const SkylineOptions& options) {
  std::vector<Row> out;
  for (auto& group : PartitionByNullBitmap(input, dims)) {
    SL_ASSIGN_OR_RETURN(std::vector<Row> local,
                        BlockNestedLoop(group, dims, options));
    for (auto& r : local) out.push_back(std::move(r));
  }
  return out;
}

Result<std::vector<Row>> ComputeSkyline(const std::vector<Row>& input,
                                        const std::vector<BoundDimension>& dims,
                                        const SkylineOptions& options) {
  SL_RETURN_NOT_OK(CheckDimensionLimit(dims));
  if (options.nulls == NullSemantics::kComplete) {
    return BlockNestedLoop(input, dims, options);
  }
  std::vector<Row> local_union;
  for (auto& part : PartitionByNullBitmap(input, dims)) {
    SL_ASSIGN_OR_RETURN(std::vector<Row> local,
                        BlockNestedLoop(part, dims, options));
    for (auto& r : local) local_union.push_back(std::move(r));
  }
  return AllPairsIncomplete(local_union, dims, options);
}

}  // namespace skyline
}  // namespace sparkline
