// Dominance testing (paper Definition 3.1 and its incomplete-data variant).
//
// This is the "new utility" of paper section 5.5: it takes the values and
// goals of the skyline dimensions of two tuples and decides dominance,
// matching value types directly to avoid casting in the hot loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "expr/expression.h"  // for SkylineGoal
#include "types/value.h"

namespace sparkline {
namespace skyline {

/// \brief A skyline dimension bound to a row ordinal.
struct BoundDimension {
  size_t ordinal;
  SkylineGoal goal;
};

/// \brief Which dominance semantics to apply.
enum class NullSemantics : uint8_t {
  /// Paper Definition 3.1: values are assumed non-null.
  kComplete,
  /// Incomplete-data dominance: comparisons are restricted to dimensions
  /// where *both* tuples are non-null (section 3). Transitivity is lost.
  kIncomplete,
};

/// \brief Pairwise dominance relation between two tuples.
enum class Dominance : uint8_t {
  kLeftDominates,
  kRightDominates,
  /// Equal on all skyline dimensions (relevant for DISTINCT).
  kEqual,
  kIncomparable,
};

/// \brief Counts dominance tests; the paper calls this "the main cost factor
/// of skyline computation" (section 2). Shared across threads.
struct DominanceCounter {
  std::atomic<int64_t> tests{0};
};

/// \brief Accounting for SaLSa-style early termination in the SFS family
/// (see SkylineOptions::sfs_early_stop). Shared across threads; the exec
/// layer surfaces the totals as QueryMetrics::sfs_rows_skipped /
/// sfs_early_stops.
struct EarlyStopStats {
  /// Input rows of SFS passes that were never scanned because a stop point
  /// proved every remaining tuple dominated.
  std::atomic<int64_t> rows_skipped{0};
  /// Number of SFS passes that terminated at a stop point before exhausting
  /// their input.
  std::atomic<int64_t> stops{0};
};

/// \brief Compares two rows on the given dimensions.
///
/// Complete semantics: `left` dominates `right` iff all DIFF dims are equal,
/// left is at least as good in every MIN/MAX dim, and strictly better in at
/// least one. Incomplete semantics restrict every check to dimensions where
/// both sides are non-null.
Dominance CompareRows(const Row& left, const Row& right,
                      const std::vector<BoundDimension>& dims,
                      NullSemantics nulls);

/// \brief Bitmap with one bit per dimension, set where the row is NULL
/// (paper section 5.7); rows with equal bitmaps form one partition within
/// which dominance is transitive again.
uint32_t NullBitmap(const Row& row, const std::vector<BoundDimension>& dims);

/// \brief Checked guard for the 32-dimension bitmap limit, enforced in all
/// build types (NullBitmap itself only SL_DCHECKs, so a release-mode caller
/// bypassing analysis validation could otherwise compute wrong bitmaps).
/// Every Result-returning skyline algorithm calls this on entry; the
/// analyzer additionally rejects >32 dimensions at validation time.
Status CheckDimensionLimit(const std::vector<BoundDimension>& dims);

}  // namespace skyline
}  // namespace sparkline
