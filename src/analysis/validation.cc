// Semantic validation of resolved plans (type checks, aggregate placement,
// skyline dimensions). Runs as the analyzer's last step, like Spark's
// CheckAnalysis.
#include "analysis/analyzer.h"
#include "common/string_util.h"

namespace sparkline {

namespace {

Status CheckExprTypes(const ExprPtr& e) {
  for (const auto& c : e->children()) {
    SL_RETURN_NOT_OK(CheckExprTypes(c));
  }
  if (e->kind() == ExprKind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(*e);
    const DataType lt = bin.left()->type();
    const DataType rt = bin.right()->type();
    if (IsComparisonOp(bin.op()) && !TypesComparable(lt, rt)) {
      return Status::AnalysisError(
          StrCat("cannot compare ", lt.ToString(), " with ", rt.ToString(),
                 " in ", e->ToString()));
    }
    if (IsArithmeticOp(bin.op()) && (!lt.is_numeric() || !rt.is_numeric())) {
      return Status::AnalysisError(
          StrCat("arithmetic requires numeric operands in ", e->ToString()));
    }
    if (IsLogicalOp(bin.op()) &&
        (lt != DataType::Bool() || rt != DataType::Bool())) {
      return Status::AnalysisError(
          StrCat("AND/OR require boolean operands in ", e->ToString()));
    }
  }
  if (e->kind() == ExprKind::kUnary) {
    const auto& un = static_cast<const UnaryExpr&>(*e);
    if (un.op() == UnaryOp::kNot && un.child()->type() != DataType::Bool()) {
      return Status::AnalysisError(
          StrCat("NOT requires a boolean operand in ", e->ToString()));
    }
    if (un.op() == UnaryOp::kNegate && !un.child()->type().is_numeric()) {
      return Status::AnalysisError(
          StrCat("unary minus requires a numeric operand in ", e->ToString()));
    }
  }
  if (e->kind() == ExprKind::kAggregate) {
    const auto& agg = static_cast<const AggregateExpr&>(*e);
    if (agg.child() != nullptr && agg.child()->ContainsAggregate()) {
      return Status::AnalysisError(
          StrCat("nested aggregate functions: ", e->ToString()));
    }
    if ((agg.fn() == AggFn::kSum || agg.fn() == AggFn::kAvg) &&
        !agg.child()->type().is_numeric()) {
      return Status::AnalysisError(
          StrCat(AggFnName(agg.fn()), "() requires a numeric argument in ",
                 e->ToString()));
    }
  }
  return Status::OK();
}

/// An aggregate output expression is valid if every leaf-ward path ends in
/// an aggregate function, a grouping expression, or a literal.
bool ValidAggOutput(const ExprPtr& e, const std::vector<ExprPtr>& groups) {
  if (e->kind() == ExprKind::kAggregate ||
      e->kind() == ExprKind::kLiteral) {
    return true;
  }
  for (const auto& g : groups) {
    if (g->ToString() == e->ToString()) return true;
    // Grouping columns match by attribute id regardless of qualifier.
    if (g->kind() == ExprKind::kAttributeRef &&
        e->kind() == ExprKind::kAttributeRef &&
        static_cast<const AttributeRef&>(*g).attr().id ==
            static_cast<const AttributeRef&>(*e).attr().id) {
      return true;
    }
  }
  if (e->kind() == ExprKind::kAttributeRef) return false;
  auto children = e->children();
  if (children.empty()) return true;
  for (const auto& c : children) {
    if (!ValidAggOutput(c, groups)) return false;
  }
  return true;
}

Status CheckNode(const LogicalPlanPtr& node) {
  for (const auto& e : node->expressions()) {
    if (!e->resolved()) {
      return Status::AnalysisError(
          StrCat("unresolved expression survived analysis: ", e->ToString(),
             " in ", node->NodeString()));
    }
    SL_RETURN_NOT_OK(CheckExprTypes(e));
  }
  switch (node->kind()) {
    case PlanKind::kFilter: {
      const auto& f = static_cast<const Filter&>(*node);
      if (f.condition()->type() != DataType::Bool()) {
        return Status::AnalysisError(
            StrCat("filter condition is not boolean: ",
                   f.condition()->ToString()));
      }
      break;
    }
    case PlanKind::kJoin: {
      const auto& j = static_cast<const Join&>(*node);
      if (j.condition() != nullptr &&
          j.condition()->type() != DataType::Bool()) {
        return Status::AnalysisError(
            StrCat("join condition is not boolean: ",
                   j.condition()->ToString()));
      }
      if (j.condition() == nullptr && j.join_type() == JoinType::kLeftOuter) {
        return Status::AnalysisError("LEFT OUTER JOIN requires a condition");
      }
      break;
    }
    case PlanKind::kAggregate: {
      const auto& agg = static_cast<const Aggregate&>(*node);
      for (const auto& item : agg.agg_list()) {
        const ExprPtr checked =
            item->kind() == ExprKind::kAlias
                ? static_cast<const Alias&>(*item).child()
                : item;
        if (!ValidAggOutput(checked, agg.group_list())) {
          return Status::AnalysisError(StrCat(
              "expression ", item->ToString(),
              " is neither an aggregate nor in the GROUP BY clause"));
        }
      }
      break;
    }
    case PlanKind::kSkyline: {
      const auto& sky = static_cast<const SkylineNode&>(*node);
      if (sky.dimensions().empty()) {
        return Status::AnalysisError("SKYLINE OF requires dimensions");
      }
      for (const auto& d : sky.dimensions()) {
        if (d->kind() != ExprKind::kSkylineDimension) {
          return Status::Internal(
              StrCat("skyline dimension has wrong kind: ", d->ToString()));
        }
        const auto& dim = static_cast<const SkylineDimension&>(*d);
        const DataType t = dim.child()->type();
        if (dim.goal() != SkylineGoal::kDiff && !t.is_numeric() &&
            t != DataType::Bool()) {
          return Status::AnalysisError(StrCat(
              "MIN/MAX skyline dimensions must be orderable (numeric or "
              "boolean), got ",
              t.ToString(), " in ", d->ToString()));
        }
      }
      if (sky.dimensions().size() > 32) {
        return Status::AnalysisError("at most 32 skyline dimensions");
      }
      break;
    }
    default:
      break;
  }
  return Status::OK();
}

}  // namespace

Status ValidatePlan(const LogicalPlanPtr& plan) {
  Status status = Status::OK();
  LogicalPlan::Foreach(plan, [&](const LogicalPlanPtr& node) {
    if (!status.ok()) return;
    status = CheckNode(node);
  });
  if (status.ok() && !plan->resolved()) {
    return Status::AnalysisError(
        StrCat("plan is not fully resolved:\n", plan->TreeString()));
  }
  return status;
}

}  // namespace sparkline
