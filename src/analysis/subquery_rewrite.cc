// Decorrelation of [NOT] EXISTS predicates into left-semi / left-anti joins.
//
// The plain-SQL skyline "reference" query (paper Listing 4) is a correlated
// NOT EXISTS self-query; after this rewrite it becomes a left-anti join whose
// condition is the dominance predicate, which is exactly the plan Spark
// produces for the rewritten queries in the paper's evaluation.
#include <set>

#include "analysis/analyzer.h"
#include "common/string_util.h"

namespace sparkline {

namespace {

/// Removes OuterRef markers, exposing the outer-plan attribute references.
ExprPtr UnwrapOuterRefs(const ExprPtr& e) {
  return Expression::Transform(e, [](const ExprPtr& n) -> ExprPtr {
    if (n->kind() == ExprKind::kOuterRef) {
      return static_cast<const OuterRef&>(*n).inner();
    }
    return n;
  });
}

/// Strips correlated conjuncts out of the subquery plan. `under_agg` guards
/// against pulling predicates across an aggregation boundary, which would
/// change semantics.
Result<LogicalPlanPtr> StripCorrelatedPredicates(const LogicalPlanPtr& plan,
                                                 bool under_agg,
                                                 std::vector<ExprPtr>* pulled) {
  const bool child_under_agg =
      under_agg || plan->kind() == PlanKind::kAggregate;
  auto children = plan->children();
  bool changed = false;
  for (auto& c : children) {
    SL_ASSIGN_OR_RETURN(
        LogicalPlanPtr nc,
        StripCorrelatedPredicates(c, child_under_agg, pulled));
    if (nc != c) {
      c = nc;
      changed = true;
    }
  }
  LogicalPlanPtr node =
      changed ? plan->WithNewChildren(std::move(children)) : plan;

  if (node->kind() == PlanKind::kFilter) {
    const auto& filter = static_cast<const Filter&>(*node);
    std::vector<ExprPtr> keep;
    std::vector<ExprPtr> correlated;
    for (const auto& c : SplitConjuncts(filter.condition())) {
      if (ContainsOuterRef(c)) {
        correlated.push_back(c);
      } else {
        keep.push_back(c);
      }
    }
    if (!correlated.empty()) {
      if (under_agg) {
        return Status::NotImplemented(
            "correlated predicate below an aggregation is not supported");
      }
      pulled->insert(pulled->end(), correlated.begin(), correlated.end());
      if (keep.empty()) return filter.child();
      return Filter::Make(CombineConjuncts(keep), filter.child());
    }
    return node;
  }

  // Correlation anywhere else (projections, join conditions, ...) is out of
  // scope.
  for (const auto& e : node->expressions()) {
    if (ContainsOuterRef(e)) {
      return Status::NotImplemented(
          StrCat("correlated reference outside WHERE: ", e->ToString()));
    }
  }
  return node;
}

/// Widens the subquery's top projection if the pulled join condition
/// references columns the projection hides.
Result<LogicalPlanPtr> EnsureConditionInputs(const LogicalPlanPtr& sub,
                                             const ExprPtr& condition,
                                             const std::set<ExprId>& outer_ids) {
  std::set<ExprId> available;
  for (const auto& a : sub->output()) available.insert(a.id);
  std::vector<Attribute> missing;
  std::set<ExprId> seen;
  for (const auto& a : CollectAttributes(condition)) {
    if (outer_ids.count(a.id) > 0 || available.count(a.id) > 0) continue;
    if (seen.insert(a.id).second) missing.push_back(a);
  }
  if (missing.empty()) return sub;
  if (sub->kind() == PlanKind::kProject) {
    const auto& project = static_cast<const Project&>(*sub);
    std::vector<ExprPtr> list = project.list();
    for (const auto& a : missing) list.push_back(a.ToRef());
    return Project::Make(std::move(list), project.child());
  }
  return Status::NotImplemented(
      "correlated predicate references columns hidden by the subquery");
}

}  // namespace

Result<LogicalPlanPtr> RewriteSubqueries(const LogicalPlanPtr& plan) {
  Status error = Status::OK();
  LogicalPlanPtr result = LogicalPlan::Transform(
      plan, [&](const LogicalPlanPtr& node) -> LogicalPlanPtr {
        if (!error.ok() || node->kind() != PlanKind::kFilter) return node;
        const auto& filter = static_cast<const Filter&>(*node);

        bool has_exists = false;
        for (const auto& c : SplitConjuncts(filter.condition())) {
          if (c->kind() == ExprKind::kExistsSubquery) has_exists = true;
        }
        if (!has_exists) return node;

        LogicalPlanPtr current = filter.child();
        std::set<ExprId> outer_ids;
        for (const auto& a : current->output()) outer_ids.insert(a.id);

        std::vector<ExprPtr> remaining;
        for (const auto& c : SplitConjuncts(filter.condition())) {
          if (c->kind() != ExprKind::kExistsSubquery) {
            remaining.push_back(c);
            continue;
          }
          const auto& exists = static_cast<const ExistsSubquery&>(*c);
          std::vector<ExprPtr> pulled;
          auto stripped =
              StripCorrelatedPredicates(exists.plan(), false, &pulled);
          if (!stripped.ok()) {
            error = stripped.status();
            return node;
          }
          for (auto& p : pulled) p = UnwrapOuterRefs(p);
          ExprPtr condition = CombineConjuncts(pulled);
          LogicalPlanPtr sub = *stripped;
          if (condition != nullptr) {
            auto widened = EnsureConditionInputs(sub, condition, outer_ids);
            if (!widened.ok()) {
              error = widened.status();
              return node;
            }
            sub = *widened;
          }
          current = Join::Make(
              current, sub,
              exists.negated() ? JoinType::kLeftAnti : JoinType::kLeftSemi,
              condition, {});
        }
        if (remaining.empty()) return current;
        return Filter::Make(CombineConjuncts(remaining), current);
      });
  SL_RETURN_NOT_OK(error);
  return result;
}

}  // namespace sparkline
