// The analyzer resolves an unresolved logical plan against the catalog
// (paper Figure 2), including the skyline-specific rules of section 5.3:
//
//  * ResolveMissingReferences for the skyline operator (Listing 6): skyline
//    dimensions may reference columns absent from the final projection; the
//    child projection is widened and a restoring Project is added on top.
//  * Aggregate propagation into skylines (Listing 7): dimensions may be
//    aggregates that are not part of the aggregate's output; they are added
//    as hidden aggregate expressions.
//  * The Sort-over-HAVING-filter aggregate fix (Appendix B): ORDER BY over
//    aggregates still resolves when a Filter (HAVING) and/or a premature
//    Project sits between the Sort and the Aggregate.
//  * [NOT] EXISTS subqueries are decorrelated into left-semi / left-anti
//    joins (this is how the plain-SQL "reference" skyline query executes).
#pragma once

#include <memory>

#include "catalog/catalog.h"
#include "common/result.h"
#include "plan/logical_plan.h"

namespace sparkline {

class Analyzer {
 public:
  explicit Analyzer(std::shared_ptr<const Catalog> catalog)
      : catalog_(std::move(catalog)) {}

  /// Resolves the plan; the result satisfies resolved() and passes semantic
  /// validation (types, aggregate placement, skyline dimension types).
  Result<LogicalPlanPtr> Analyze(const LogicalPlanPtr& plan) const;

 private:
  std::shared_ptr<const Catalog> catalog_;
};

/// \brief Rewrites [NOT] EXISTS predicates into left-semi / left-anti joins
/// with the correlated conjuncts pulled up as the join condition. Exposed
/// separately for tests.
Result<LogicalPlanPtr> RewriteSubqueries(const LogicalPlanPtr& plan);

/// \brief Semantic validation of a resolved plan (types, aggregate
/// placement, skyline dimensions). Exposed separately for tests.
Status ValidatePlan(const LogicalPlanPtr& plan);

}  // namespace sparkline
