#include "analysis/analyzer.h"

#include <optional>
#include <set>

#include "common/string_util.h"

namespace sparkline {

namespace {

using Scopes = std::vector<std::vector<Attribute>>;

/// Removes qualifier strings so expressions can be compared semantically
/// ("o.price#3" and "price#3" are the same reference).
ExprPtr StripQualifiers(const ExprPtr& e) {
  return Expression::Transform(e, [](const ExprPtr& node) -> ExprPtr {
    if (node->kind() == ExprKind::kAttributeRef) {
      Attribute a = static_cast<const AttributeRef&>(*node).attr();
      if (a.qualifier.empty()) return node;
      a.qualifier.clear();
      return AttributeRef::Make(std::move(a));
    }
    return node;
  });
}

bool SemanticEquals(const ExprPtr& a, const ExprPtr& b) {
  return StripQualifiers(a)->ToString() == StripQualifiers(b)->ToString();
}

std::string DeriveName(const ExprPtr& e) {
  if (e->kind() == ExprKind::kFunctionCall) {
    return ToLower(static_cast<const FunctionCall&>(*e).name());
  }
  if (e->kind() == ExprKind::kAggregate) {
    const auto& agg = static_cast<const AggregateExpr&>(*e);
    if (agg.fn() == AggFn::kCountStar) return "count";
    return AggFnName(agg.fn());
  }
  return StripQualifiers(e)->ToString();
}

bool IsNamedExpr(const ExprPtr& e) {
  return e->kind() == ExprKind::kAlias || e->kind() == ExprKind::kAttributeRef;
}

ExprPtr EnsureNamed(const ExprPtr& e) {
  if (IsNamedExpr(e)) return e;
  return Alias::Make(e, DeriveName(e));
}

std::vector<ExprPtr> OutputRefs(const LogicalPlanPtr& plan) {
  std::vector<ExprPtr> refs;
  for (const auto& a : plan->output()) refs.push_back(a.ToRef());
  return refs;
}

bool ContainsUnresolvedNames(const ExprPtr& e) {
  bool found = false;
  Expression::Foreach(e, [&](const ExprPtr& n) {
    if (n->kind() == ExprKind::kUnresolvedAttribute) found = true;
  });
  return found;
}

Result<std::optional<BuiltinFn>> LookupBuiltin(const std::string& lower,
                                               size_t arity) {
  auto check_arity = [&](size_t lo, size_t hi,
                         BuiltinFn fn) -> Result<std::optional<BuiltinFn>> {
    if (arity < lo || arity > hi) {
      return Status::AnalysisError(
          StrCat("wrong number of arguments to ", lower, "(): ", arity));
    }
    return std::optional<BuiltinFn>(fn);
  };
  if (lower == "ifnull" || lower == "nvl") {
    return check_arity(2, 2, BuiltinFn::kIfNull);
  }
  if (lower == "coalesce") return check_arity(1, 64, BuiltinFn::kCoalesce);
  if (lower == "abs") return check_arity(1, 1, BuiltinFn::kAbs);
  if (lower == "least") return check_arity(1, 64, BuiltinFn::kLeast);
  if (lower == "greatest") return check_arity(1, 64, BuiltinFn::kGreatest);
  if (lower == "round") return check_arity(1, 2, BuiltinFn::kRound);
  return Status::AnalysisError(StrCat("unknown function: ", lower));
}

/// The resolver proper: a post-order pass with explicit outer scopes for
/// subqueries (Catalyst resolves with rule fixpoints; the structured
/// recursion here reaches the same fixed point in one pass).
class Resolver {
 public:
  explicit Resolver(const Catalog& catalog) : catalog_(catalog) {}

  Result<LogicalPlanPtr> Resolve(const LogicalPlanPtr& plan,
                                 const Scopes& outer) {
    switch (plan->kind()) {
      case PlanKind::kUnresolvedRelation:
        return ResolveRelation(static_cast<const UnresolvedRelation&>(*plan));
      case PlanKind::kScan:
      case PlanKind::kLocalRelation:
        return plan;
      case PlanKind::kSubqueryAlias: {
        const auto& node = static_cast<const SubqueryAlias&>(*plan);
        SL_ASSIGN_OR_RETURN(LogicalPlanPtr child, Resolve(node.child(), outer));
        return child == node.child() ? plan
                                     : plan->WithNewChildren({child});
      }
      case PlanKind::kProject:
        return ResolveProject(static_cast<const Project&>(*plan), outer);
      case PlanKind::kFilter:
        return ResolveFilter(static_cast<const Filter&>(*plan), outer);
      case PlanKind::kJoin:
        return ResolveJoin(static_cast<const Join&>(*plan), outer);
      case PlanKind::kAggregate:
        return ResolveAggregate(static_cast<const Aggregate&>(*plan), outer);
      case PlanKind::kSort:
        return ResolveSort(static_cast<const Sort&>(*plan), outer);
      case PlanKind::kSkyline:
        return ResolveSkyline(static_cast<const SkylineNode&>(*plan), outer);
      case PlanKind::kDistinct:
      case PlanKind::kLimit:
      case PlanKind::kExplainAnalyze: {
        SL_ASSIGN_OR_RETURN(LogicalPlanPtr child,
                            Resolve(plan->children()[0], outer));
        return child == plan->children()[0] ? plan
                                            : plan->WithNewChildren({child});
      }
    }
    return Status::Internal("unknown plan kind in resolver");
  }

  /// Resolves names in `e` against `local` attributes, then (wrapping in
  /// OuterRef) against the outer scopes. Unresolvable names are left as-is;
  /// callers decide whether that is an error or a missing-reference case.
  Result<ExprPtr> ResolveExpr(const ExprPtr& e,
                              const std::vector<Attribute>& local,
                              const Scopes& outer) {
    switch (e->kind()) {
      case ExprKind::kUnresolvedAttribute: {
        const auto& ua = static_cast<const UnresolvedAttribute&>(*e);
        SL_ASSIGN_OR_RETURN(std::optional<Attribute> hit,
                            FindAttribute(ua, local));
        if (hit.has_value()) return AttributeRef::Make(*hit);
        for (const auto& scope : outer) {
          SL_ASSIGN_OR_RETURN(hit, FindAttribute(ua, scope));
          if (hit.has_value()) {
            return OuterRef::Make(AttributeRef::Make(*hit));
          }
        }
        return e;  // unresolved; caller decides
      }
      case ExprKind::kFunctionCall: {
        const auto& call = static_cast<const FunctionCall&>(*e);
        std::vector<ExprPtr> args;
        args.reserve(call.args().size());
        for (const auto& a : call.args()) {
          SL_ASSIGN_OR_RETURN(ExprPtr ra, ResolveExpr(a, local, outer));
          args.push_back(std::move(ra));
        }
        std::optional<BuiltinFn> fn = call.fn();
        if (!fn.has_value()) {
          SL_ASSIGN_OR_RETURN(
              fn, LookupBuiltin(ToLower(call.name()), args.size()));
        }
        return ExprPtr(std::make_shared<FunctionCall>(call.name(),
                                                      std::move(args), fn));
      }
      case ExprKind::kExistsSubquery: {
        const auto& ex = static_cast<const ExistsSubquery&>(*e);
        Scopes sub_outer;
        sub_outer.push_back(local);
        sub_outer.insert(sub_outer.end(), outer.begin(), outer.end());
        SL_ASSIGN_OR_RETURN(LogicalPlanPtr sub, Resolve(ex.plan(), sub_outer));
        return ExistsSubquery::Make(std::move(sub), ex.negated());
      }
      case ExprKind::kScalarSubquery: {
        const auto& sq = static_cast<const ScalarSubquery&>(*e);
        if (sq.resolved()) return e;
        Scopes sub_outer;
        sub_outer.push_back(local);
        sub_outer.insert(sub_outer.end(), outer.begin(), outer.end());
        SL_ASSIGN_OR_RETURN(LogicalPlanPtr sub, Resolve(sq.plan(), sub_outer));
        const auto out = sub->output();
        if (out.size() != 1) {
          return Status::AnalysisError(
              StrCat("scalar subquery must return one column, got ",
                     out.size()));
        }
        bool correlated = false;
        LogicalPlan::Foreach(sub, [&](const LogicalPlanPtr& n) {
          for (const auto& ex : n->expressions()) {
            if (ContainsOuterRef(ex)) correlated = true;
          }
        });
        if (correlated) {
          return Status::NotImplemented(
              "correlated scalar subqueries are not supported");
        }
        return ScalarSubquery::Make(std::move(sub), out[0].type,
                                    /*nullable=*/true, /*resolved=*/true);
      }
      default:
        break;
    }
    auto children = e->children();
    bool changed = false;
    for (auto& c : children) {
      SL_ASSIGN_OR_RETURN(ExprPtr rc, ResolveExpr(c, local, outer));
      if (rc != c) {
        c = rc;
        changed = true;
      }
    }
    return changed ? e->WithNewChildren(std::move(children)) : e;
  }

 private:
  Result<LogicalPlanPtr> ResolveRelation(const UnresolvedRelation& rel) {
    auto table = catalog_.GetTable(rel.name());
    if (!table.ok()) {
      return Status::AnalysisError(
          StrCat("table or view not found: ", rel.name()));
    }
    // A relation without an explicit alias is addressable by its table name
    // ("SELECT kv.k FROM kv"), like in Spark.
    return SubqueryAlias::Make(rel.name(), Scan::Make(*table));
  }

  /// Case-insensitive attribute lookup honouring an optional qualifier.
  Result<std::optional<Attribute>> FindAttribute(
      const UnresolvedAttribute& ua, const std::vector<Attribute>& attrs) {
    const auto& parts = ua.parts();
    std::string qualifier = parts.size() == 2 ? parts[0] : "";
    const std::string& name = parts.back();
    if (parts.size() > 2) {
      return Status::AnalysisError(
          StrCat("unsupported qualified name: ", ua.ToString()));
    }
    std::vector<Attribute> hits;
    for (const auto& a : attrs) {
      if (!EqualsIgnoreCase(a.name, name)) continue;
      if (!qualifier.empty() && !EqualsIgnoreCase(a.qualifier, qualifier)) {
        continue;
      }
      hits.push_back(a);
    }
    if (hits.empty()) return std::optional<Attribute>();
    if (hits.size() > 1) {
      return Status::AnalysisError(
          StrCat("ambiguous reference '", ua.ToString(), "' matches ",
                 hits.size(), " columns"));
    }
    return std::optional<Attribute>(hits[0]);
  }

  /// Expands Star items against the child output.
  Result<std::vector<ExprPtr>> ExpandStars(const std::vector<ExprPtr>& list,
                                           const LogicalPlanPtr& child) {
    std::vector<ExprPtr> out;
    for (const auto& e : list) {
      if (e->kind() != ExprKind::kStar) {
        out.push_back(e);
        continue;
      }
      const auto& star = static_cast<const Star&>(*e);
      size_t before = out.size();
      for (const auto& a : child->output()) {
        if (star.qualifier().empty() ||
            EqualsIgnoreCase(a.qualifier, star.qualifier())) {
          out.push_back(a.ToRef());
        }
      }
      if (out.size() == before) {
        return Status::AnalysisError(
            StrCat("cannot expand ", star.ToString(), ": no matching columns"));
      }
    }
    return out;
  }

  Result<LogicalPlanPtr> ResolveProject(const Project& node,
                                        const Scopes& outer) {
    SL_ASSIGN_OR_RETURN(LogicalPlanPtr child, Resolve(node.child(), outer));
    SL_ASSIGN_OR_RETURN(std::vector<ExprPtr> list,
                        ExpandStars(node.list(), child));
    const auto local = child->output();
    for (auto& e : list) {
      SL_ASSIGN_OR_RETURN(e, ResolveExpr(e, local, outer));
      if (ContainsUnresolvedNames(e)) {
        return Status::AnalysisError(
            StrCat("cannot resolve '", e->ToString(), "' given input columns ",
                   AttributeListString(local)));
      }
      if (e->ContainsAggregate()) {
        return Status::AnalysisError(
            StrCat("aggregate function in non-aggregate projection: ",
                   e->ToString()));
      }
      e = EnsureNamed(e);
    }
    return Project::Make(std::move(list), std::move(child));
  }

  Result<LogicalPlanPtr> ResolveJoin(const Join& node, const Scopes& outer) {
    SL_ASSIGN_OR_RETURN(LogicalPlanPtr left, Resolve(node.left(), outer));
    SL_ASSIGN_OR_RETURN(LogicalPlanPtr right, Resolve(node.right(), outer));

    if (!node.using_columns().empty()) {
      // USING(c1, ...) becomes an equality condition plus a projection that
      // hides the right-hand copies of the join columns (Spark semantics).
      ExprPtr cond = nullptr;
      std::set<ExprId> hidden;
      for (const auto& col : node.using_columns()) {
        SL_ASSIGN_OR_RETURN(
            std::optional<Attribute> l,
            FindAttribute(UnresolvedAttribute({col}), left->output()));
        SL_ASSIGN_OR_RETURN(
            std::optional<Attribute> r,
            FindAttribute(UnresolvedAttribute({col}), right->output()));
        if (!l.has_value() || !r.has_value()) {
          return Status::AnalysisError(
              StrCat("USING column '", col, "' not found on both join sides"));
        }
        hidden.insert(r->id);
        ExprPtr eq = BinaryExpr::Make(BinaryOp::kEq, l->ToRef(), r->ToRef());
        cond = cond == nullptr
                   ? eq
                   : BinaryExpr::Make(BinaryOp::kAnd, cond, eq);
      }
      auto join = Join::Make(left, right, node.join_type(), cond, {});
      std::vector<ExprPtr> list;
      for (const auto& a : join->output()) {
        if (hidden.count(a.id) == 0) list.push_back(a.ToRef());
      }
      return Project::Make(std::move(list), std::move(join));
    }

    ExprPtr cond = node.condition();
    if (cond != nullptr) {
      std::vector<Attribute> local = left->output();
      const auto r = right->output();
      local.insert(local.end(), r.begin(), r.end());
      SL_ASSIGN_OR_RETURN(cond, ResolveExpr(cond, local, outer));
      if (ContainsUnresolvedNames(cond)) {
        return Status::AnalysisError(
            StrCat("cannot resolve join condition: ", cond->ToString()));
      }
    }
    return Join::Make(std::move(left), std::move(right), node.join_type(),
                      std::move(cond), {});
  }

  Result<LogicalPlanPtr> ResolveAggregate(const Aggregate& node,
                                          const Scopes& outer) {
    SL_ASSIGN_OR_RETURN(LogicalPlanPtr child, Resolve(node.child(), outer));
    const auto local = child->output();

    std::vector<ExprPtr> groups = node.group_list();
    for (auto& g : groups) {
      SL_ASSIGN_OR_RETURN(g, ResolveExpr(g, local, outer));
      if (ContainsUnresolvedNames(g)) {
        return Status::AnalysisError(
            StrCat("cannot resolve GROUP BY expression: ", g->ToString()));
      }
    }

    SL_ASSIGN_OR_RETURN(std::vector<ExprPtr> aggs,
                        ExpandStars(node.agg_list(), child));
    for (auto& a : aggs) {
      SL_ASSIGN_OR_RETURN(a, ResolveExpr(a, local, outer));
      if (ContainsUnresolvedNames(a)) {
        return Status::AnalysisError(
            StrCat("cannot resolve '", a->ToString(), "' given input columns ",
                   AttributeListString(local)));
      }
      a = EnsureNamed(a);
    }
    return Aggregate::Make(std::move(groups), std::move(aggs),
                           std::move(child));
  }

  // --- HAVING / ORDER BY / SKYLINE over aggregates -------------------------

  /// The walk-down part shared by Filter/Sort/Skyline-over-Aggregate
  /// resolution: finds an Aggregate below pass-through operators, remembering
  /// at most one "premature" Project on the way (paper Appendix B).
  struct AggPath {
    std::vector<LogicalPlanPtr> passthrough;  // outermost first
    LogicalPlanPtr premature_project;         // may be null
    std::shared_ptr<const Aggregate> aggregate;
  };

  static std::optional<AggPath> FindAggregate(const LogicalPlanPtr& start) {
    AggPath path;
    LogicalPlanPtr node = start;
    for (;;) {
      switch (node->kind()) {
        case PlanKind::kAggregate:
          path.aggregate = std::static_pointer_cast<const Aggregate>(node);
          return path;
        case PlanKind::kFilter:
        case PlanKind::kSkyline:
        case PlanKind::kDistinct:
          path.passthrough.push_back(node);
          node = node->children()[0];
          break;
        case PlanKind::kProject:
          if (path.premature_project != nullptr) return std::nullopt;
          path.premature_project = node;
          node = node->children()[0];
          break;
        default:
          return std::nullopt;
      }
    }
  }

  /// The analog of Spark's resolveOperatorWithAggregate (paper Listings 7
  /// and 10): resolves `exprs` against the aggregate, adding hidden
  /// aggregate/grouping outputs as needed. Returns the rewritten expressions
  /// and the (possibly extended) aggregate.
  Result<std::pair<std::vector<ExprPtr>, std::shared_ptr<const Aggregate>>>
  RewriteWithAggregate(std::vector<ExprPtr> exprs,
                       std::shared_ptr<const Aggregate> agg,
                       const Scopes& outer, bool* grew) {
    *grew = false;
    const auto agg_output = agg->output();
    const auto child_output = agg->child()->output();

    // Step 1: resolve remaining names — first against the aggregate output,
    // then against the aggregate's *input* (for expressions like count(id)
    // where id is not part of the output).
    for (auto& e : exprs) {
      SL_ASSIGN_OR_RETURN(e, ResolveExpr(e, agg_output, outer));
      SL_ASSIGN_OR_RETURN(e, ResolveExpr(e, child_output, outer));
      if (ContainsUnresolvedNames(e)) {
        return Status::AnalysisError(
            StrCat("cannot resolve '", e->ToString(),
                   "' against aggregate output or input"));
      }
    }

    std::vector<ExprPtr> agg_list = agg->agg_list();
    std::set<ExprId> output_ids;
    for (const auto& a : agg_output) output_ids.insert(a.id);

    auto expose_aggregate = [&](const ExprPtr& agg_expr) -> ExprPtr {
      // Reuse an existing output that computes the same aggregate.
      for (const auto& item : agg_list) {
        if (item->kind() == ExprKind::kAlias) {
          const auto& alias = static_cast<const Alias&>(*item);
          if (SemanticEquals(alias.child(), agg_expr)) {
            return AttributeRef::Make(alias.ToAttribute());
          }
        }
      }
      auto alias = std::make_shared<Alias>(agg_expr, DeriveName(agg_expr));
      agg_list.push_back(alias);
      *grew = true;
      return AttributeRef::Make(alias->ToAttribute());
    };

    // Top-down rewrite: aggregate subtrees are exposed wholesale (their
    // arguments legitimately reference the aggregate's *input*), so the
    // bare-column check below must not descend into them.
    Status error = Status::OK();
    std::function<ExprPtr(const ExprPtr&)> rewrite =
        [&](const ExprPtr& n) -> ExprPtr {
      if (!error.ok()) return n;
      if (n->kind() == ExprKind::kAggregate) {
        return expose_aggregate(n);
      }
      if (n->kind() == ExprKind::kAttributeRef) {
        const Attribute& attr = static_cast<const AttributeRef&>(*n).attr();
        if (output_ids.count(attr.id) > 0) return n;
        // A bare column from below the aggregate: legal only if grouped.
        bool grouped = false;
        for (const auto& g : agg->group_list()) {
          if (g->kind() == ExprKind::kAttributeRef &&
              static_cast<const AttributeRef&>(*g).attr().id == attr.id) {
            grouped = true;
            break;
          }
        }
        if (!grouped) {
          error = Status::AnalysisError(
              StrCat("column ", attr.ToString(),
                     " must appear in GROUP BY or inside an aggregate"));
          return n;
        }
        agg_list.push_back(n);
        output_ids.insert(attr.id);
        *grew = true;
        return n;
      }
      auto children = n->children();
      bool changed = false;
      for (auto& c : children) {
        ExprPtr nc = rewrite(c);
        if (nc != c) {
          c = nc;
          changed = true;
        }
      }
      return changed ? n->WithNewChildren(std::move(children)) : n;
    };
    for (auto& e : exprs) {
      e = rewrite(e);
      SL_RETURN_NOT_OK(error);
    }

    std::shared_ptr<const Aggregate> new_agg =
        *grew ? std::make_shared<Aggregate>(agg->group_list(),
                                            std::move(agg_list), agg->child())
              : agg;
    return std::make_pair(std::move(exprs), std::move(new_agg));
  }

  /// Rebuilds the pass-through chain over a (possibly extended) aggregate.
  static LogicalPlanPtr RebuildPath(const AggPath& path,
                                    std::shared_ptr<const Aggregate> agg) {
    LogicalPlanPtr node = agg;
    for (auto it = path.passthrough.rbegin(); it != path.passthrough.rend();
         ++it) {
      node = (*it)->WithNewChildren({node});
    }
    return node;
  }

  Result<LogicalPlanPtr> ResolveFilter(const Filter& node,
                                       const Scopes& outer) {
    SL_ASSIGN_OR_RETURN(LogicalPlanPtr child, Resolve(node.child(), outer));
    const auto local = child->output();
    SL_ASSIGN_OR_RETURN(ExprPtr cond,
                        ResolveExpr(node.condition(), local, outer));

    const bool needs_agg =
        cond->ContainsAggregate() || ContainsUnresolvedNames(cond);
    if (needs_agg && child->kind() == PlanKind::kAggregate) {
      // HAVING: aggregates (or grouping columns) not present in the output.
      auto agg = std::static_pointer_cast<const Aggregate>(child);
      bool grew = false;
      SL_ASSIGN_OR_RETURN(auto rewritten,
                          RewriteWithAggregate({cond}, agg, outer, &grew));
      LogicalPlanPtr filter =
          Filter::Make(rewritten.first[0], rewritten.second);
      if (grew) {
        // Hide the helper columns again (paper Listing 6's restoring
        // projection, applied to HAVING).
        return Project::Make(OutputRefs(child), std::move(filter));
      }
      return filter;
    }

    if (ContainsUnresolvedNames(cond)) {
      return Status::AnalysisError(
          StrCat("cannot resolve '", cond->ToString(),
                 "' given input columns ", AttributeListString(local)));
    }
    if (cond->ContainsAggregate()) {
      return Status::AnalysisError(
          "aggregate functions are only allowed in HAVING over a GROUP BY");
    }
    return Filter::Make(std::move(cond), std::move(child));
  }

  /// ResolveMissingReferences (paper Listing 6): resolve `exprs` through a
  /// chain of Projects/Filters, widening projections so the referenced
  /// columns flow up. Returns the rewritten expressions and child.
  Result<std::pair<std::vector<ExprPtr>, LogicalPlanPtr>> AddMissingAttrs(
      std::vector<ExprPtr> exprs, const LogicalPlanPtr& child,
      const Scopes& outer) {
    switch (child->kind()) {
      case PlanKind::kProject: {
        const auto& project = static_cast<const Project&>(*child);
        SL_ASSIGN_OR_RETURN(
            auto rec, AddMissingAttrs(std::move(exprs), project.child(), outer));
        std::set<ExprId> have;
        for (const auto& a : child->output()) have.insert(a.id);
        std::set<ExprId> grand_ids;
        for (const auto& a : rec.second->output()) grand_ids.insert(a.id);
        std::vector<ExprPtr> additions;
        std::set<ExprId> added;
        for (const auto& e : rec.first) {
          for (const auto& a : CollectAttributes(e)) {
            if (have.count(a.id) == 0 && grand_ids.count(a.id) > 0 &&
                added.insert(a.id).second) {
              additions.push_back(a.ToRef());
            }
          }
        }
        if (additions.empty() && rec.second == project.child()) {
          return std::make_pair(std::move(rec.first), child);
        }
        std::vector<ExprPtr> list = project.list();
        list.insert(list.end(), additions.begin(), additions.end());
        return std::make_pair(
            std::move(rec.first),
            Project::Make(std::move(list), std::move(rec.second)));
      }
      case PlanKind::kFilter:
      case PlanKind::kSort:
      case PlanKind::kDistinct:
      case PlanKind::kSubqueryAlias:
      case PlanKind::kSkyline: {
        SL_ASSIGN_OR_RETURN(
            auto rec,
            AddMissingAttrs(std::move(exprs), child->children()[0], outer));
        if (rec.second == child->children()[0]) {
          return std::make_pair(std::move(rec.first), child);
        }
        return std::make_pair(std::move(rec.first),
                              child->WithNewChildren({rec.second}));
      }
      default: {
        const auto local = child->output();
        for (auto& e : exprs) {
          SL_ASSIGN_OR_RETURN(e, ResolveExpr(e, local, outer));
        }
        return std::make_pair(std::move(exprs), child);
      }
    }
  }

  Result<LogicalPlanPtr> ResolveSort(const Sort& node, const Scopes& outer) {
    SL_ASSIGN_OR_RETURN(LogicalPlanPtr child, Resolve(node.child(), outer));
    const auto local = child->output();

    std::vector<SortOrder> orders = node.orders();
    bool unresolved = false;
    bool has_agg = false;
    for (auto& o : orders) {
      SL_ASSIGN_OR_RETURN(o.expr, ResolveExpr(o.expr, local, outer));
      unresolved |= ContainsUnresolvedNames(o.expr);
      has_agg |= o.expr->ContainsAggregate();
    }

    if (unresolved || has_agg) {
      // Try the aggregate machinery first (ORDER BY over aggregates, with
      // HAVING filters and premature projections in between — Appendix B).
      if (auto path = FindAggregate(child); path.has_value()) {
        std::vector<ExprPtr> exprs;
        for (auto& o : orders) exprs.push_back(o.expr);
        bool grew = false;
        SL_ASSIGN_OR_RETURN(
            auto rewritten,
            RewriteWithAggregate(std::move(exprs), path->aggregate, outer,
                                 &grew));
        for (size_t i = 0; i < orders.size(); ++i) {
          orders[i].expr = rewritten.first[i];
        }
        LogicalPlanPtr inner = RebuildPath(*path, rewritten.second);
        LogicalPlanPtr sort = Sort::Make(std::move(orders), std::move(inner));
        if (path->premature_project != nullptr) {
          return path->premature_project->WithNewChildren({sort});
        }
        if (grew) return Project::Make(OutputRefs(child), std::move(sort));
        return sort;
      }
      // Otherwise: missing references through projections (Listing 6 style).
      std::vector<ExprPtr> exprs;
      for (auto& o : orders) exprs.push_back(o.expr);
      SL_ASSIGN_OR_RETURN(auto rec,
                          AddMissingAttrs(std::move(exprs), child, outer));
      for (size_t i = 0; i < orders.size(); ++i) {
        if (ContainsUnresolvedNames(rec.first[i])) {
          return Status::AnalysisError(
              StrCat("cannot resolve ORDER BY expression: ",
                     rec.first[i]->ToString()));
        }
        orders[i].expr = rec.first[i];
      }
      if (rec.second == child) {
        return Sort::Make(std::move(orders), std::move(child));
      }
      return Project::Make(
          OutputRefs(child),
          Sort::Make(std::move(orders), std::move(rec.second)));
    }
    return Sort::Make(std::move(orders), std::move(child));
  }

  Result<LogicalPlanPtr> ResolveSkyline(const SkylineNode& node,
                                        const Scopes& outer) {
    SL_ASSIGN_OR_RETURN(LogicalPlanPtr child, Resolve(node.child(), outer));
    const auto local = child->output();

    std::vector<ExprPtr> dims = node.dimensions();
    bool unresolved = false;
    bool has_agg = false;
    for (auto& d : dims) {
      SL_ASSIGN_OR_RETURN(d, ResolveExpr(d, local, outer));
      unresolved |= ContainsUnresolvedNames(d);
      has_agg |= d->ContainsAggregate();
    }

    if (unresolved || has_agg) {
      // Listing 7: propagate aggregates into the skyline.
      if (auto path = FindAggregate(child); path.has_value()) {
        bool grew = false;
        SL_ASSIGN_OR_RETURN(
            auto rewritten,
            RewriteWithAggregate(std::move(dims), path->aggregate, outer,
                                 &grew));
        LogicalPlanPtr inner = RebuildPath(*path, rewritten.second);
        LogicalPlanPtr sky =
            SkylineNode::Make(node.distinct(), node.complete(),
                              std::move(rewritten.first), std::move(inner));
        if (path->premature_project != nullptr) {
          return path->premature_project->WithNewChildren({sky});
        }
        if (grew) return Project::Make(OutputRefs(child), std::move(sky));
        return sky;
      }
      // Listing 6: dimensions not present in the projection.
      SL_ASSIGN_OR_RETURN(auto rec,
                          AddMissingAttrs(std::move(dims), child, outer));
      for (auto& d : rec.first) {
        if (ContainsUnresolvedNames(d)) {
          return Status::AnalysisError(StrCat(
              "cannot resolve skyline dimension: ", d->ToString(),
              " given input columns ", AttributeListString(local)));
        }
      }
      if (rec.second == child) {
        return SkylineNode::Make(node.distinct(), node.complete(),
                                 std::move(rec.first), std::move(child));
      }
      // Restore the original output above the widened skyline (Listing 6,
      // lines 10-12).
      return Project::Make(
          OutputRefs(child),
          SkylineNode::Make(node.distinct(), node.complete(),
                            std::move(rec.first), std::move(rec.second)));
    }
    return SkylineNode::Make(node.distinct(), node.complete(), std::move(dims),
                             std::move(child));
  }

  static std::string AttributeListString(const std::vector<Attribute>& attrs) {
    std::vector<std::string> names;
    names.reserve(attrs.size());
    for (const auto& a : attrs) names.push_back(a.ToString());
    return StrCat("[", JoinStrings(names, ", "), "]");
  }

  const Catalog& catalog_;
};

}  // namespace

Result<LogicalPlanPtr> Analyzer::Analyze(const LogicalPlanPtr& plan) const {
  Resolver resolver(*catalog_);
  SL_ASSIGN_OR_RETURN(LogicalPlanPtr resolved, resolver.Resolve(plan, {}));
  SL_ASSIGN_OR_RETURN(resolved, RewriteSubqueries(resolved));
  SL_RETURN_NOT_OK(ValidatePlan(resolved));
  return resolved;
}

}  // namespace sparkline
