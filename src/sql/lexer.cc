#include "sql/lexer.h"

#include <cctype>
#include <map>

#include "common/string_util.h"

namespace sparkline {

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kFloat:
      return "float";
    case TokenType::kString:
      return "string";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kComma:
      return "','";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kSlash:
      return "'/'";
    case TokenType::kPercent:
      return "'%'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNeq:
      return "'<>'";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kEof:
      return "end of input";
    default:
      return "keyword";
  }
}

std::string Token::ToString() const {
  if (type == TokenType::kEof) return "<eof>";
  return text;
}

namespace {

const std::map<std::string, TokenType>& KeywordMap() {
  static const std::map<std::string, TokenType> kMap = {
      {"select", TokenType::kSelect}, {"from", TokenType::kFrom},
      {"where", TokenType::kWhere},   {"group", TokenType::kGroup},
      {"by", TokenType::kBy},         {"having", TokenType::kHaving},
      {"order", TokenType::kOrder},   {"limit", TokenType::kLimit},
      {"skyline", TokenType::kSkyline}, {"of", TokenType::kOf},
      {"distinct", TokenType::kDistinct}, {"as", TokenType::kAs},
      {"on", TokenType::kOn},         {"using", TokenType::kUsing},
      {"join", TokenType::kJoin},     {"inner", TokenType::kInner},
      {"left", TokenType::kLeft},     {"outer", TokenType::kOuter},
      {"cross", TokenType::kCross},   {"not", TokenType::kNot},
      {"exists", TokenType::kExists}, {"and", TokenType::kAnd},
      {"or", TokenType::kOr},         {"null", TokenType::kNull},
      {"is", TokenType::kIs},         {"true", TokenType::kTrue},
      {"false", TokenType::kFalse},   {"asc", TokenType::kAsc},
      {"desc", TokenType::kDesc},     {"nulls", TokenType::kNulls},
      {"first", TokenType::kFirst},   {"last", TokenType::kLast},
      {"cast", TokenType::kCast},
  };
  return kMap;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(sql[i])) ++i;
      std::string text = sql.substr(start, i - start);
      auto it = KeywordMap().find(ToLower(text));
      if (it != KeywordMap().end()) {
        out.push_back(Token{it->second, std::move(text), start});
      } else {
        out.push_back(Token{TokenType::kIdentifier, std::move(text), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
          is_float = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        }
      }
      out.push_back(Token{is_float ? TokenType::kFloat : TokenType::kInteger,
                          sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i++];
      }
      if (!closed) {
        return Status::ParseError(
            StrCat("unterminated string literal at offset ", start));
      }
      out.push_back(Token{TokenType::kString, std::move(text), start});
      continue;
    }
    auto push1 = [&](TokenType t) {
      out.push_back(Token{t, sql.substr(start, 1), start});
      ++i;
    };
    switch (c) {
      case '(':
        push1(TokenType::kLParen);
        break;
      case ')':
        push1(TokenType::kRParen);
        break;
      case ',':
        push1(TokenType::kComma);
        break;
      case '.':
        push1(TokenType::kDot);
        break;
      case ';':
        push1(TokenType::kSemicolon);
        break;
      case '+':
        push1(TokenType::kPlus);
        break;
      case '-':
        push1(TokenType::kMinus);
        break;
      case '*':
        push1(TokenType::kStar);
        break;
      case '/':
        push1(TokenType::kSlash);
        break;
      case '%':
        push1(TokenType::kPercent);
        break;
      case '=':
        push1(TokenType::kEq);
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          out.push_back(Token{TokenType::kLe, "<=", start});
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          out.push_back(Token{TokenType::kNeq, "<>", start});
          i += 2;
        } else {
          push1(TokenType::kLt);
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          out.push_back(Token{TokenType::kGe, ">=", start});
          i += 2;
        } else {
          push1(TokenType::kGt);
        }
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          out.push_back(Token{TokenType::kNeq, "!=", start});
          i += 2;
        } else {
          return Status::ParseError(
              StrCat("unexpected character '!' at offset ", start));
        }
        break;
      default:
        return Status::ParseError(
            StrCat("unexpected character '", std::string(1, c),
                   "' at offset ", start));
    }
  }
  out.push_back(Token{TokenType::kEof, "", n});
  return out;
}

}  // namespace sparkline
