// Recursive-descent SQL parser producing *unresolved* logical plans
// (the combination of Spark's ANTLR parser + AstBuilder).
//
// Supported grammar (paper Listings 3 and 5):
//
//   query      := SELECT [DISTINCT] selectItem, ...
//                 [FROM tableRef] [WHERE expr]
//                 [GROUP BY expr, ...] [HAVING expr]
//                 [SKYLINE OF [DISTINCT] [COMPLETE] item (MIN|MAX|DIFF), ...]
//                 [ORDER BY sortItem, ...] [LIMIT n]
//   tableRef   := primary ([INNER|CROSS|LEFT [OUTER]] JOIN primary
//                          [ON expr | USING (col, ...)])*
//   primary    := name [[AS] alias] | '(' query ')' [AS] alias
//
// plus scalar subqueries, [NOT] EXISTS subqueries, CAST, IS [NOT] NULL and
// the usual arithmetic/comparison/boolean operators.
#pragma once

#include <string>

#include "common/result.h"
#include "plan/logical_plan.h"

namespace sparkline {

/// \brief Parses one SQL statement into an unresolved logical plan.
Result<LogicalPlanPtr> ParseSql(const std::string& sql);

/// \brief Parses a standalone scalar/boolean expression (used by the
/// DataFrame API's `expr("...")` helper and by tests).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace sparkline
