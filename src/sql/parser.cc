#include "sql/parser.h"

#include <optional>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace sparkline {

namespace {

/// Aggregate function names recognized by the parser.
std::optional<AggFn> LookupAggFn(const std::string& lower) {
  if (lower == "count") return AggFn::kCount;
  if (lower == "sum") return AggFn::kSum;
  if (lower == "min") return AggFn::kMin;
  if (lower == "max") return AggFn::kMax;
  if (lower == "avg") return AggFn::kAvg;
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<LogicalPlanPtr> ParseStatement() {
    // EXPLAIN ANALYZE is a statement-level prefix, not a query production:
    // it cannot appear in subqueries. Soft keywords, so EXPLAIN / ANALYZE
    // stay usable as identifiers everywhere else.
    bool explain_analyze = false;
    if (MatchSoftKeyword("explain")) {
      if (!MatchSoftKeyword("analyze")) {
        return Unexpected("ANALYZE after EXPLAIN");
      }
      explain_analyze = true;
    }
    SL_ASSIGN_OR_RETURN(LogicalPlanPtr plan, ParseQuery());
    if (Peek().type == TokenType::kSemicolon) Advance();
    if (Peek().type != TokenType::kEof) {
      return Unexpected("end of statement");
    }
    if (explain_analyze) plan = ExplainAnalyzeNode::Make(std::move(plan));
    return plan;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    SL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().type != TokenType::kEof) {
      return Unexpected("end of expression");
    }
    return e;
  }

 private:
  // --- token helpers -------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t) {
    if (Check(t)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenType t) {
    if (Match(t)) return Status::OK();
    return Status::ParseError(StrCat("expected ", TokenTypeName(t), " but got '",
                                     Peek().ToString(), "' at offset ",
                                     Peek().pos));
  }
  Status Unexpected(const std::string& wanted) const {
    return Status::ParseError(StrCat("expected ", wanted, " but got '",
                                     Peek().ToString(), "' at offset ",
                                     Peek().pos));
  }
  /// Contextual ("soft") keyword check against an identifier's text.
  bool MatchSoftKeyword(const char* word) {
    if (Check(TokenType::kIdentifier) && EqualsIgnoreCase(Peek().text, word)) {
      Advance();
      return true;
    }
    return false;
  }

  // --- query ---------------------------------------------------------------
  Result<LogicalPlanPtr> ParseQuery() {
    SL_RETURN_NOT_OK(Expect(TokenType::kSelect));
    const bool select_distinct = Match(TokenType::kDistinct);

    std::vector<ExprPtr> select_list;
    bool has_aggregate = false;
    do {
      SL_ASSIGN_OR_RETURN(ExprPtr item, ParseSelectItem());
      if (item->ContainsAggregate()) has_aggregate = true;
      select_list.push_back(std::move(item));
    } while (Match(TokenType::kComma));

    LogicalPlanPtr plan;
    if (Match(TokenType::kFrom)) {
      SL_ASSIGN_OR_RETURN(plan, ParseTableRef());
    } else {
      // FROM-less SELECT evaluates over one empty row.
      plan = LocalRelation::Make(Schema{}, {Row{}});
    }

    if (Match(TokenType::kWhere)) {
      SL_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      plan = Filter::Make(std::move(cond), std::move(plan));
    }

    std::vector<ExprPtr> group_list;
    bool has_group_by = false;
    if (Match(TokenType::kGroup)) {
      SL_RETURN_NOT_OK(Expect(TokenType::kBy));
      has_group_by = true;
      do {
        SL_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
        group_list.push_back(std::move(g));
      } while (Match(TokenType::kComma));
    }

    // Name the select items now; Aggregate and Project both carry them.
    std::vector<ExprPtr> named = NameSelectItems(select_list);

    if (has_group_by || has_aggregate) {
      plan = Aggregate::Make(std::move(group_list), std::move(named),
                             std::move(plan));
    } else {
      plan = Project::Make(std::move(named), std::move(plan));
    }

    if (Match(TokenType::kHaving)) {
      SL_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      plan = Filter::Make(std::move(cond), std::move(plan));
    }

    // skylineClause (Listing 5): after HAVING, before ORDER BY.
    if (Match(TokenType::kSkyline)) {
      SL_RETURN_NOT_OK(Expect(TokenType::kOf));
      const bool sky_distinct = Match(TokenType::kDistinct);
      const bool sky_complete = MatchSoftKeyword("complete");
      std::vector<ExprPtr> dims;
      do {
        SL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        SkylineGoal goal;
        if (MatchSoftKeyword("min")) {
          goal = SkylineGoal::kMin;
        } else if (MatchSoftKeyword("max")) {
          goal = SkylineGoal::kMax;
        } else if (MatchSoftKeyword("diff")) {
          goal = SkylineGoal::kDiff;
        } else {
          return Unexpected("MIN, MAX or DIFF after skyline dimension");
        }
        dims.push_back(SkylineDimension::Make(std::move(e), goal));
      } while (Match(TokenType::kComma));
      plan = SkylineNode::Make(sky_distinct, sky_complete, std::move(dims),
                               std::move(plan));
    }

    if (select_distinct) {
      plan = Distinct::Make(std::move(plan));
    }

    if (Match(TokenType::kOrder)) {
      SL_RETURN_NOT_OK(Expect(TokenType::kBy));
      std::vector<SortOrder> orders;
      do {
        SortOrder order;
        SL_ASSIGN_OR_RETURN(order.expr, ParseExpr());
        if (Match(TokenType::kDesc)) {
          order.ascending = false;
          order.nulls_first = false;
        } else {
          Match(TokenType::kAsc);
        }
        if (Match(TokenType::kNulls)) {
          if (Match(TokenType::kFirst)) {
            order.nulls_first = true;
          } else {
            SL_RETURN_NOT_OK(Expect(TokenType::kLast));
            order.nulls_first = false;
          }
        }
        orders.push_back(std::move(order));
      } while (Match(TokenType::kComma));
      plan = Sort::Make(std::move(orders), std::move(plan));
    }

    if (Match(TokenType::kLimit)) {
      if (!Check(TokenType::kInteger)) return Unexpected("integer after LIMIT");
      int64_t n = std::stoll(Advance().text);
      plan = Limit::Make(n, std::move(plan));
    }

    return plan;
  }

  /// Wraps non-trivial select items in Aliases with derived names.
  static std::vector<ExprPtr> NameSelectItems(
      const std::vector<ExprPtr>& items) {
    std::vector<ExprPtr> out;
    out.reserve(items.size());
    for (const auto& e : items) {
      switch (e->kind()) {
        case ExprKind::kAlias:
        case ExprKind::kStar:
        case ExprKind::kUnresolvedAttribute:
        case ExprKind::kAttributeRef:
          out.push_back(e);
          break;
        default:
          out.push_back(Alias::Make(e, DeriveName(e)));
      }
    }
    return out;
  }

  static std::string DeriveName(const ExprPtr& e) {
    if (e->kind() == ExprKind::kFunctionCall) {
      return ToLower(static_cast<const FunctionCall&>(*e).name());
    }
    if (e->kind() == ExprKind::kAggregate) {
      const auto& agg = static_cast<const AggregateExpr&>(*e);
      if (agg.fn() == AggFn::kCountStar) return "count";
      return AggFnName(agg.fn());
    }
    return e->ToString();
  }

  // --- table references ----------------------------------------------------
  Result<LogicalPlanPtr> ParseTableRef() {
    SL_ASSIGN_OR_RETURN(LogicalPlanPtr left, ParseTablePrimary());
    for (;;) {
      JoinType type = JoinType::kInner;
      if (Match(TokenType::kCross)) {
        SL_RETURN_NOT_OK(Expect(TokenType::kJoin));
        type = JoinType::kCross;
      } else if (Match(TokenType::kInner)) {
        SL_RETURN_NOT_OK(Expect(TokenType::kJoin));
      } else if (Match(TokenType::kLeft)) {
        Match(TokenType::kOuter);
        SL_RETURN_NOT_OK(Expect(TokenType::kJoin));
        type = JoinType::kLeftOuter;
      } else if (Match(TokenType::kJoin)) {
        // plain JOIN == INNER JOIN
      } else {
        break;
      }
      SL_ASSIGN_OR_RETURN(LogicalPlanPtr right, ParseTablePrimary());
      ExprPtr condition = nullptr;
      std::vector<std::string> using_cols;
      if (Match(TokenType::kOn)) {
        SL_ASSIGN_OR_RETURN(condition, ParseExpr());
      } else if (Match(TokenType::kUsing)) {
        SL_RETURN_NOT_OK(Expect(TokenType::kLParen));
        do {
          if (!Check(TokenType::kIdentifier)) {
            return Unexpected("column name in USING");
          }
          using_cols.push_back(Advance().text);
        } while (Match(TokenType::kComma));
        SL_RETURN_NOT_OK(Expect(TokenType::kRParen));
      } else if (type != JoinType::kCross) {
        return Unexpected("ON or USING after JOIN");
      }
      left = Join::Make(std::move(left), std::move(right), type,
                        std::move(condition), std::move(using_cols));
    }
    return left;
  }

  Result<LogicalPlanPtr> ParseTablePrimary() {
    if (Match(TokenType::kLParen)) {
      SL_ASSIGN_OR_RETURN(LogicalPlanPtr sub, ParseQuery());
      SL_RETURN_NOT_OK(Expect(TokenType::kRParen));
      // A derived table requires an alias (optional AS).
      Match(TokenType::kAs);
      if (Check(TokenType::kIdentifier)) {
        return SubqueryAlias::Make(Advance().text, std::move(sub));
      }
      return sub;
    }
    if (!Check(TokenType::kIdentifier)) return Unexpected("table name");
    std::string name = Advance().text;
    LogicalPlanPtr rel = UnresolvedRelation::Make(name);
    if (Match(TokenType::kAs)) {
      if (!Check(TokenType::kIdentifier)) return Unexpected("alias after AS");
      return SubqueryAlias::Make(Advance().text, std::move(rel));
    }
    if (Check(TokenType::kIdentifier)) {
      return SubqueryAlias::Make(Advance().text, std::move(rel));
    }
    return rel;
  }

  // --- select items --------------------------------------------------------
  Result<ExprPtr> ParseSelectItem() {
    if (Match(TokenType::kStar)) return Star::Make();
    // "t.*"
    if (Check(TokenType::kIdentifier) && Peek(1).type == TokenType::kDot &&
        Peek(2).type == TokenType::kStar) {
      std::string qualifier = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
      return Star::Make(std::move(qualifier));
    }
    SL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Match(TokenType::kAs)) {
      if (!Check(TokenType::kIdentifier)) return Unexpected("alias after AS");
      return Alias::Make(std::move(e), Advance().text);
    }
    if (Check(TokenType::kIdentifier)) {
      return Alias::Make(std::move(e), Advance().text);
    }
    return e;
  }

  // --- expressions ---------------------------------------------------------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Match(TokenType::kOr)) {
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = BinaryExpr::Make(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Match(TokenType::kAnd)) {
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left =
          BinaryExpr::Make(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (Match(TokenType::kNot)) {
      SL_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      // NOT EXISTS folds into the subquery expression itself.
      if (inner->kind() == ExprKind::kExistsSubquery) {
        const auto& ex = static_cast<const ExistsSubquery&>(*inner);
        return ExistsSubquery::Make(ex.plan(), !ex.negated());
      }
      return UnaryExpr::Make(UnaryOp::kNot, std::move(inner));
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    for (;;) {
      BinaryOp op;
      if (Match(TokenType::kEq)) {
        op = BinaryOp::kEq;
      } else if (Match(TokenType::kNeq)) {
        op = BinaryOp::kNeq;
      } else if (Match(TokenType::kLt)) {
        op = BinaryOp::kLt;
      } else if (Match(TokenType::kLe)) {
        op = BinaryOp::kLe;
      } else if (Match(TokenType::kGt)) {
        op = BinaryOp::kGt;
      } else if (Match(TokenType::kGe)) {
        op = BinaryOp::kGe;
      } else if (Match(TokenType::kIs)) {
        const bool negated = Match(TokenType::kNot);
        SL_RETURN_NOT_OK(Expect(TokenType::kNull));
        left = UnaryExpr::Make(
            negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull, std::move(left));
        continue;
      } else {
        break;
      }
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      left = BinaryExpr::Make(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    for (;;) {
      BinaryOp op;
      if (Match(TokenType::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenType::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        break;
      }
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = BinaryExpr::Make(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    SL_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (Match(TokenType::kStar)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenType::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Match(TokenType::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      SL_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = BinaryExpr::Make(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenType::kMinus)) {
      SL_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      // Fold "-literal" immediately so negative constants stay literals.
      if (inner->kind() == ExprKind::kLiteral) {
        const Value& v = static_cast<const Literal&>(*inner).value();
        if (!v.is_null() && v.type() == DataType::Int64()) {
          return Literal::Make(Value::Int64(-v.int64_value()));
        }
        if (!v.is_null() && v.type() == DataType::Double()) {
          return Literal::Make(Value::Double(-v.double_value()));
        }
      }
      return UnaryExpr::Make(UnaryOp::kNegate, std::move(inner));
    }
    Match(TokenType::kPlus);
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger:
        Advance();
        return Literal::Make(Value::Int64(std::stoll(tok.text)));
      case TokenType::kFloat:
        Advance();
        return Literal::Make(Value::Double(std::stod(tok.text)));
      case TokenType::kString:
        Advance();
        return Literal::Make(Value::String(tok.text));
      case TokenType::kTrue:
        Advance();
        return Literal::Make(Value::Bool(true));
      case TokenType::kFalse:
        Advance();
        return Literal::Make(Value::Bool(false));
      case TokenType::kNull:
        Advance();
        return Literal::Make(Value::Null());
      case TokenType::kExists: {
        Advance();
        SL_RETURN_NOT_OK(Expect(TokenType::kLParen));
        SL_ASSIGN_OR_RETURN(LogicalPlanPtr sub, ParseQuery());
        SL_RETURN_NOT_OK(Expect(TokenType::kRParen));
        return ExistsSubquery::Make(std::move(sub), /*negated=*/false);
      }
      case TokenType::kCast: {
        Advance();
        SL_RETURN_NOT_OK(Expect(TokenType::kLParen));
        SL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        SL_RETURN_NOT_OK(Expect(TokenType::kAs));
        SL_ASSIGN_OR_RETURN(DataType type, ParseTypeName());
        SL_RETURN_NOT_OK(Expect(TokenType::kRParen));
        return Cast::Make(std::move(inner), type);
      }
      case TokenType::kLParen: {
        // Either a parenthesized expression or a scalar subquery.
        if (Peek(1).type == TokenType::kSelect) {
          Advance();
          SL_ASSIGN_OR_RETURN(LogicalPlanPtr sub, ParseQuery());
          SL_RETURN_NOT_OK(Expect(TokenType::kRParen));
          return ScalarSubquery::Make(std::move(sub), DataType::Int64(),
                                      /*nullable=*/true, /*resolved=*/false);
        }
        Advance();
        SL_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        SL_RETURN_NOT_OK(Expect(TokenType::kRParen));
        return inner;
      }
      case TokenType::kIdentifier:
        return ParseNameOrCall();
      default:
        break;
    }
    return Unexpected("expression");
  }

  Result<DataType> ParseTypeName() {
    if (!Check(TokenType::kIdentifier)) return Unexpected("type name");
    std::string name = ToLower(Advance().text);
    if (name == "bigint" || name == "int" || name == "integer" ||
        name == "long") {
      return DataType::Int64();
    }
    if (name == "double" || name == "float" || name == "real") {
      return DataType::Double();
    }
    if (name == "varchar" || name == "string" || name == "text") {
      return DataType::String();
    }
    if (name == "boolean" || name == "bool") return DataType::Bool();
    return Status::ParseError(StrCat("unknown type name '", name, "'"));
  }

  Result<ExprPtr> ParseNameOrCall() {
    std::string first = Advance().text;

    if (Check(TokenType::kLParen)) {
      // Function or aggregate call.
      Advance();
      const std::string lower = ToLower(first);
      std::optional<AggFn> agg = LookupAggFn(lower);
      bool distinct = Match(TokenType::kDistinct);
      if (agg.has_value() && Match(TokenType::kStar)) {
        SL_RETURN_NOT_OK(Expect(TokenType::kRParen));
        if (lower != "count") {
          return Status::ParseError(StrCat(lower, "(*) is not supported"));
        }
        return AggregateExpr::Make(AggFn::kCountStar, nullptr);
      }
      std::vector<ExprPtr> args;
      if (!Check(TokenType::kRParen)) {
        do {
          SL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
        } while (Match(TokenType::kComma));
      }
      SL_RETURN_NOT_OK(Expect(TokenType::kRParen));
      if (agg.has_value()) {
        if (args.size() != 1) {
          return Status::ParseError(
              StrCat(lower, "() expects exactly one argument"));
        }
        return AggregateExpr::Make(*agg, args[0], distinct);
      }
      if (distinct) {
        return Status::ParseError(
            StrCat("DISTINCT is not supported in ", lower, "()"));
      }
      return FunctionCall::Make(std::move(first), std::move(args));
    }

    std::vector<std::string> parts{std::move(first)};
    while (Check(TokenType::kDot)) {
      if (Peek(1).type == TokenType::kStar) break;  // "t.*" handled upstream
      Advance();
      if (!Check(TokenType::kIdentifier)) {
        return Unexpected("identifier after '.'");
      }
      parts.push_back(Advance().text);
    }
    return UnresolvedAttribute::Make(std::move(parts));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<LogicalPlanPtr> ParseSql(const std::string& sql) {
  SL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  SL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace sparkline
