// SQL tokenizer.
//
// Keyword policy: only structural keywords are lexed as keywords. MIN / MAX /
// DIFF / COMPLETE are contextual (plain identifiers matched by text inside
// the skyline clause) so they remain usable as function and column names —
// the same trick ANTLR grammars use for soft keywords.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace sparkline {

enum class TokenType : uint8_t {
  // literals & names
  kIdentifier,
  kInteger,
  kFloat,
  kString,
  // symbols
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  // keywords
  kSelect,
  kFrom,
  kWhere,
  kGroup,
  kBy,
  kHaving,
  kOrder,
  kLimit,
  kSkyline,
  kOf,
  kDistinct,
  kAs,
  kOn,
  kUsing,
  kJoin,
  kInner,
  kLeft,
  kOuter,
  kCross,
  kNot,
  kExists,
  kAnd,
  kOr,
  kNull,
  kIs,
  kTrue,
  kFalse,
  kAsc,
  kDesc,
  kNulls,
  kFirst,
  kLast,
  kCast,
  kEof,
};

const char* TokenTypeName(TokenType t);

struct Token {
  TokenType type;
  std::string text;  ///< original text (identifiers keep their case)
  size_t pos = 0;    ///< byte offset in the input, for error messages

  std::string ToString() const;
};

/// \brief Tokenizes `sql`; returns a vector ending in an EOF token.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace sparkline
