#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "datagen/datagen.h"

namespace sparkline {
namespace datagen {

MusicBrainzTables GenerateMusicBrainz(const MusicBrainzOptions& options) {
  MusicBrainzTables out;

  Schema recording_schema_complete({
      Field{"id", DataType::Int64(), false},
      Field{"length", DataType::Int64(), false},
      Field{"video", DataType::Int64(), false},
  });
  Schema recording_schema_incomplete({
      Field{"id", DataType::Int64(), false},
      Field{"length", DataType::Int64(), true},
      Field{"video", DataType::Int64(), true},
  });
  Schema meta_schema({
      Field{"id", DataType::Int64(), false},
      Field{"rating", DataType::Double(), true},
      Field{"rating_count", DataType::Int64(), true},
  });
  Schema track_schema({
      Field{"id", DataType::Int64(), false},
      Field{"recording", DataType::Int64(), false},
      Field{"position", DataType::Int64(), false},
  });

  out.recording_complete = std::make_shared<Table>(
      "recording_complete", recording_schema_complete);
  out.recording_incomplete = std::make_shared<Table>(
      "recording_incomplete", recording_schema_incomplete);
  out.recording_meta =
      std::make_shared<Table>("recording_meta", meta_schema);
  out.track = std::make_shared<Table>("track", track_schema);

  out.recording_complete->constraints().primary_key = {"id"};
  out.recording_incomplete->constraints().primary_key = {"id"};
  out.recording_meta->constraints().primary_key = {"id"};
  out.track->constraints().primary_key = {"id"};
  // Every recording row is guaranteed a recording_meta partner: the join
  // "JOIN recording_meta rm USING (id)" is non-reductive, which the
  // skyline-through-join rule can exploit (paper section 5.4).
  for (auto* t : {out.recording_complete.get(), out.recording_incomplete.get()}) {
    t->constraints().foreign_keys.push_back(TableConstraints::ForeignKey{
        {"id"}, "recording_meta", {"id"}, /*referencing_not_null=*/true});
  }

  Rng rng(options.seed);
  ZipfDistribution count_dist(2000, 1.2);
  int64_t track_id = 1;

  for (size_t i = 0; i < options.num_recordings; ++i) {
    const int64_t id = static_cast<int64_t>(i) + 1;
    // Track lengths ~ log-normal around 3.5 minutes (in milliseconds).
    const int64_t length =
        static_cast<int64_t>(std::exp(rng.Normal(12.3, 0.45)));
    const int64_t video = rng.Bernoulli(0.08) ? 1 : 0;

    out.recording_complete->AppendRowUnchecked(
        {Value::Int64(id), Value::Int64(length), Value::Int64(video)});

    Row incomplete_row{Value::Int64(id), Value::Int64(length),
                       Value::Int64(video)};
    if (rng.Bernoulli(0.15)) incomplete_row[1] = Value::Null(DataType::Int64());
    if (rng.Bernoulli(0.05)) incomplete_row[2] = Value::Null(DataType::Int64());
    out.recording_incomplete->AppendRowUnchecked(std::move(incomplete_row));

    // About one third of recordings carry ratings (the paper selected all
    // ~500k rated recordings out of 1.5M).
    Row meta{Value::Int64(id), Value::Null(DataType::Double()),
             Value::Null(DataType::Int64())};
    if (rng.Bernoulli(0.34)) {
      const int64_t count = count_dist.Sample(&rng);
      meta[1] = Value::Double(
          std::round(std::clamp(rng.Normal(72.0, 18.0), 0.0, 100.0)));
      meta[2] = Value::Int64(count);
    }
    out.recording_meta->AppendRowUnchecked(std::move(meta));

    // Tracks: every recording appears on at least one track (so the
    // LEFT OUTER JOIN of Listing 11 never null-extends and the COMPLETE
    // skyline keyword is justified); a skewed tail appears on many
    // compilations.
    const int64_t num_tracks = 1 + (count_dist.Sample(&rng) - 1) % 7;
    for (int64_t t = 0; t < num_tracks; ++t) {
      out.track->AppendRowUnchecked({Value::Int64(track_id++), Value::Int64(id),
                                     Value::Int64(rng.UniformInt(1, 20))});
    }
  }
  return out;
}

}  // namespace datagen
}  // namespace sparkline
