#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "datagen/datagen.h"

namespace sparkline {
namespace datagen {

TablePtr GenerateAirbnb(const AirbnbOptions& options) {
  Schema schema({
      Field{"id", DataType::Int64(), false},
      Field{"price", DataType::Double(), options.incomplete},
      Field{"accommodates", DataType::Int64(), options.incomplete},
      Field{"bedrooms", DataType::Int64(), options.incomplete},
      Field{"beds", DataType::Int64(), options.incomplete},
      Field{"number_of_reviews", DataType::Int64(), options.incomplete},
      Field{"review_scores_rating", DataType::Double(), options.incomplete},
  });
  auto table = std::make_shared<Table>(options.table_name, std::move(schema));
  table->constraints().primary_key = {"id"};
  table->Reserve(options.num_rows);

  Rng rng(options.seed);
  ZipfDistribution accommodates_dist(16, 1.4);
  ZipfDistribution reviews_dist(400, 1.05);

  for (size_t i = 0; i < options.num_rows; ++i) {
    const int64_t accommodates = accommodates_dist.Sample(&rng);
    const int64_t bedrooms =
        std::max<int64_t>(1, accommodates / 2 + rng.UniformInt(-1, 1));
    const int64_t beds =
        std::max<int64_t>(1, accommodates + rng.UniformInt(-1, 1));
    // Price grows with capacity (correlated dimensions shrink skylines, as
    // in the real listings data) plus heavy log-normal noise.
    const double price = std::round(
        100.0 *
        std::exp(3.2 + 0.18 * static_cast<double>(accommodates) +
                 rng.Normal(0.0, 0.55))) /
        100.0;
    const int64_t reviews = reviews_dist.Sample(&rng) - 1;
    // Ratings cluster near the top and improve slightly with review count.
    double rating = 20.0 * std::clamp(4.30 +
                                          0.05 * std::log1p(static_cast<double>(
                                                     reviews)) +
                                          rng.Normal(0.0, 0.35),
                                      1.0, 5.0);
    rating = std::round(rating * 100.0) / 100.0;

    Row row;
    row.reserve(7);
    row.push_back(Value::Int64(static_cast<int64_t>(i) + 1));
    row.push_back(Value::Double(price));
    row.push_back(Value::Int64(accommodates));
    row.push_back(Value::Int64(bedrooms));
    row.push_back(Value::Int64(beds));
    row.push_back(Value::Int64(reviews));
    row.push_back(Value::Double(rating));

    if (options.incomplete) {
      // Column null rates mirror the real dump: bedrooms/beds are often
      // unfilled, review scores missing for unreviewed listings. Together
      // they leave ~69% of rows fully complete (paper section 6.2).
      if (rng.Bernoulli(0.10)) row[3] = Value::Null(DataType::Int64());
      if (rng.Bernoulli(0.05)) row[4] = Value::Null(DataType::Int64());
      if ((reviews == 0 && rng.Bernoulli(0.6)) || rng.Bernoulli(0.06)) {
        row[6] = Value::Null(DataType::Double());
      }
      if (rng.Bernoulli(0.02)) row[5] = Value::Null(DataType::Int64());
    }
    table->AppendRowUnchecked(std::move(row));
  }
  return table;
}

TablePtr CompleteSubset(const Table& table, const std::string& new_name) {
  Schema schema;
  for (const auto& f : table.schema().fields()) {
    schema.AddField(Field{f.name, f.type, false});
  }
  auto out = std::make_shared<Table>(new_name, std::move(schema));
  out->constraints() = table.constraints();
  for (const auto& row : table.rows()) {
    bool complete = true;
    for (const auto& v : row) complete &= !v.is_null();
    if (complete) out->AppendRowUnchecked(row);
  }
  return out;
}

}  // namespace datagen
}  // namespace sparkline
