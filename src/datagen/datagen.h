// Dataset generators reproducing the shapes of the paper's evaluation data
// (section 6.2 and Appendix E). Real Inside-Airbnb / DSB / MusicBrainz dumps
// are not redistributable; these generators produce synthetic data with the
// same columns (Tables 1, 2, 13), the same correlation signs and comparable
// null patterns — which is what the skyline experiments are sensitive to.
// All generators are deterministic in their seed.
#pragma once

#include <cstdint>
#include <string>

#include "catalog/table.h"
#include "common/result.h"

namespace sparkline {
namespace datagen {

/// \brief Inside-Airbnb-like listings (paper Table 1).
///
/// Columns: id KEY, price MIN, accommodates MAX, bedrooms MAX, beds MAX,
/// number_of_reviews MAX, review_scores_rating MAX.
///
/// With `incomplete`, per-column null rates are tuned so that ~69% of rows
/// are fully complete (the paper's 820,698 of 1,193,465).
struct AirbnbOptions {
  std::string table_name = "listings";
  size_t num_rows = 20000;
  uint64_t seed = 42;
  bool incomplete = false;
};
TablePtr GenerateAirbnb(const AirbnbOptions& options);

/// \brief DSB store_sales-like fact table (paper Table 2).
///
/// Columns: ss_item_sk KEY, ss_ticket_number KEY, ss_quantity MAX (uniform
/// 1..100 — deliberately low-cardinality, which reproduces the paper's huge
/// one-dimensional skyline anomaly), ss_wholesale_cost MIN, ss_list_price
/// MIN, ss_sales_price MIN, ss_ext_discount_amt MAX, ss_ext_sales_price MIN.
/// Costs and prices are multiplicatively correlated as in DSB.
struct StoreSalesOptions {
  std::string table_name = "store_sales";
  size_t num_rows = 50000;
  uint64_t seed = 7;
  bool incomplete = false;
  /// Per-dimension null probability in the incomplete variant.
  double null_rate = 0.05;
};
TablePtr GenerateStoreSales(const StoreSalesOptions& options);

/// \brief MusicBrainz-like recording / recording_meta / track tables for the
/// complex-query experiments (paper Appendix E, Table 13).
struct MusicBrainzOptions {
  size_t num_recordings = 10000;
  uint64_t seed = 1234;
};
struct MusicBrainzTables {
  TablePtr recording_complete;    ///< no nulls, every recording has a track
  TablePtr recording_incomplete;  ///< nulls in length/video, orphan recordings
  TablePtr recording_meta;        ///< rating / rating_count (sparse ratings)
  TablePtr track;                 ///< recording FK, position
};
MusicBrainzTables GenerateMusicBrainz(const MusicBrainzOptions& options);

/// \brief Copies only the rows with no NULL in any column (the paper's
/// construction of the "complete" dataset variants).
TablePtr CompleteSubset(const Table& table, const std::string& new_name);

/// \brief Plain anti-correlated / correlated / independent point generators,
/// the classic skyline micro-benchmark workloads (Börzsönyi et al.), used by
/// the micro benches and property tests.
enum class PointDistribution { kIndependent, kCorrelated, kAntiCorrelated };
TablePtr GeneratePoints(const std::string& table_name, size_t num_rows,
                        size_t num_dims, PointDistribution dist,
                        uint64_t seed, double null_rate = 0.0);

}  // namespace datagen
}  // namespace sparkline
