// Minimal CSV reader/writer so examples can demonstrate data-source
// independence (NULL encoded as an empty field; strings quoted with ""
// escaping).
#pragma once

#include <string>

#include "catalog/table.h"
#include "common/result.h"

namespace sparkline {
namespace datagen {

/// Writes `table` (with a header line) to `path`.
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a CSV written by WriteCsv (or compatible) into a new table with the
/// given schema; the header line is validated against the schema names.
Result<TablePtr> ReadCsv(const std::string& path, const Schema& schema,
                         const std::string& table_name);

}  // namespace datagen
}  // namespace sparkline
