#include "datagen/csv.h"

#include <fstream>

#include "common/string_util.h"

namespace sparkline {
namespace datagen {

namespace {

std::string EscapeField(const Value& v) {
  if (v.is_null()) return "";
  std::string s = v.ToString();
  if (v.type() == DataType::String()) {
    bool needs_quotes = s.find_first_of(",\"\n") != std::string::npos ||
                        s.empty();
    if (needs_quotes) {
      std::string quoted = "\"";
      for (char c : s) {
        if (c == '"') quoted += '"';
        quoted += c;
      }
      quoted += '"';
      return quoted;
    }
  }
  return s;
}

/// Splits one CSV line honouring quotes.
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      std::vector<bool>* quoted) {
  std::vector<std::string> fields;
  quoted->clear();
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      was_quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      quoted->push_back(was_quoted);
      current.clear();
      was_quoted = false;
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  quoted->push_back(was_quoted);
  return fields;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Invalid(StrCat("cannot open ", path, " for writing"));
  }
  std::vector<std::string> names;
  for (const auto& f : table.schema().fields()) names.push_back(f.name);
  out << JoinStrings(names, ",") << "\n";
  for (const auto& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ",";
      out << EscapeField(row[i]);
    }
    out << "\n";
  }
  if (!out.good()) return Status::Invalid(StrCat("write to ", path, " failed"));
  return Status::OK();
}

Result<TablePtr> ReadCsv(const std::string& path, const Schema& schema,
                         const std::string& table_name) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound(StrCat("cannot open ", path));
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Invalid(StrCat(path, " is empty (missing header)"));
  }
  std::vector<bool> quoted;
  const auto header = SplitCsvLine(line, &quoted);
  if (header.size() != schema.num_fields()) {
    return Status::Invalid(
        StrCat(path, ": header has ", header.size(), " fields, schema has ",
               schema.num_fields()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (!EqualsIgnoreCase(header[i], schema.field(i).name)) {
      return Status::Invalid(StrCat(path, ": header field '", header[i],
                                    "' does not match schema field '",
                                    schema.field(i).name, "'"));
    }
  }

  auto table = std::make_shared<Table>(table_name, schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = SplitCsvLine(line, &quoted);
    if (fields.size() != schema.num_fields()) {
      return Status::Invalid(StrCat(path, " line ", line_no, ": expected ",
                                    schema.num_fields(), " fields, got ",
                                    fields.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      const Field& f = schema.field(i);
      if (fields[i].empty() && !quoted[i]) {
        row.push_back(Value::Null(f.type));
        continue;
      }
      SL_ASSIGN_OR_RETURN(Value v,
                          Value::String(fields[i]).CastTo(f.type));
      row.push_back(std::move(v));
    }
    SL_RETURN_NOT_OK(table->AppendRow(std::move(row)));
  }
  return table;
}

}  // namespace datagen
}  // namespace sparkline
