#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "datagen/datagen.h"

namespace sparkline {
namespace datagen {

TablePtr GenerateStoreSales(const StoreSalesOptions& options) {
  const bool inc = options.incomplete;
  Schema schema({
      Field{"ss_item_sk", DataType::Int64(), false},
      Field{"ss_ticket_number", DataType::Int64(), false},
      Field{"ss_quantity", DataType::Int64(), inc},
      Field{"ss_wholesale_cost", DataType::Double(), inc},
      Field{"ss_list_price", DataType::Double(), inc},
      Field{"ss_sales_price", DataType::Double(), inc},
      Field{"ss_ext_discount_amt", DataType::Double(), inc},
      Field{"ss_ext_sales_price", DataType::Double(), inc},
  });
  auto table = std::make_shared<Table>(options.table_name, std::move(schema));
  table->constraints().primary_key = {"ss_item_sk", "ss_ticket_number"};
  table->Reserve(options.num_rows);

  Rng rng(options.seed);
  auto money = [](double v) { return std::round(v * 100.0) / 100.0; };

  for (size_t i = 0; i < options.num_rows; ++i) {
    // DSB generates normally-distributed, correlated prices on top of the
    // TPC-DS schema; quantity stays low-cardinality (1..100), which is why
    // a 1-dimensional skyline over it keeps ~1% of all tuples.
    const int64_t quantity = rng.UniformInt(1, 100);
    const double wholesale =
        money(std::max(1.0, rng.Normal(47.0, 18.0)));
    const double list = money(wholesale * rng.Uniform(1.2, 2.4));
    const double sales = money(list * rng.Uniform(0.35, 1.0));
    const double discount =
        money((list - sales) * static_cast<double>(quantity));
    const double ext_sales = money(sales * static_cast<double>(quantity));

    Row row;
    row.reserve(8);
    row.push_back(Value::Int64(rng.UniformInt(1, 200000)));
    row.push_back(Value::Int64(static_cast<int64_t>(i) + 1));
    row.push_back(Value::Int64(quantity));
    row.push_back(Value::Double(wholesale));
    row.push_back(Value::Double(list));
    row.push_back(Value::Double(sales));
    row.push_back(Value::Double(discount));
    row.push_back(Value::Double(ext_sales));

    if (inc) {
      for (size_t c = 2; c < 8; ++c) {
        if (rng.Bernoulli(options.null_rate)) {
          row[c] = Value::Null(table->schema().field(c).type);
        }
      }
    }
    table->AppendRowUnchecked(std::move(row));
  }
  return table;
}

TablePtr GeneratePoints(const std::string& table_name, size_t num_rows,
                        size_t num_dims, PointDistribution dist, uint64_t seed,
                        double null_rate) {
  Schema schema({Field{"id", DataType::Int64(), false}});
  for (size_t d = 0; d < num_dims; ++d) {
    schema.AddField(
        Field{"d" + std::to_string(d), DataType::Double(), null_rate > 0});
  }
  auto table = std::make_shared<Table>(table_name, std::move(schema));
  table->constraints().primary_key = {"id"};
  table->Reserve(num_rows);

  Rng rng(seed);
  for (size_t i = 0; i < num_rows; ++i) {
    Row row;
    row.reserve(num_dims + 1);
    row.push_back(Value::Int64(static_cast<int64_t>(i)));
    switch (dist) {
      case PointDistribution::kIndependent:
        for (size_t d = 0; d < num_dims; ++d) {
          row.push_back(Value::Double(rng.Uniform(0.0, 1.0)));
        }
        break;
      case PointDistribution::kCorrelated: {
        const double base = rng.Uniform(0.0, 1.0);
        for (size_t d = 0; d < num_dims; ++d) {
          row.push_back(Value::Double(
              std::clamp(base + rng.Normal(0.0, 0.05), 0.0, 1.0)));
        }
        break;
      }
      case PointDistribution::kAntiCorrelated: {
        // Points near the hyperplane sum(x) = c: good in one dimension,
        // bad in another -> large skylines.
        const double c = std::clamp(rng.Normal(0.5, 0.05), 0.0, 1.0);
        std::vector<double> vals(num_dims);
        double sum = 0;
        for (auto& v : vals) {
          v = rng.Uniform(0.0, 1.0);
          sum += v;
        }
        for (size_t d = 0; d < num_dims; ++d) {
          row.push_back(Value::Double(
              std::clamp(vals[d] / sum * c * static_cast<double>(num_dims),
                         0.0, 1.0)));
        }
        break;
      }
    }
    if (null_rate > 0) {
      for (size_t d = 1; d <= num_dims; ++d) {
        if (rng.Bernoulli(null_rate)) {
          row[d] = Value::Null(DataType::Double());
        }
      }
    }
    table->AppendRowUnchecked(std::move(row));
  }
  return table;
}

}  // namespace datagen
}  // namespace sparkline
