#!/usr/bin/env python3
"""sl_lint: project-specific invariants the C++ compiler cannot check.

Rules (each suppressible per line/function with `sl-lint: allow(<rule>)`):

  nodiscard          Status / Result<T> class definitions must carry
                     [[nodiscard]] (class-level, so every Status- or
                     Result-returning API inherits warn-on-ignore).
  failpoint-registry SL_FAILPOINT("...") call sites and failpoint_site()
                     overrides, the kSites registry in failpoint.cc, and
                     the ARCHITECTURE.md site table must describe the same
                     site set (all three pairwise).
  flag-docs          Every `sparkline.*` flag key compared in
                     src/api/session.cc must have a row in README.md's
                     flag table, and vice versa (case-insensitive — SetConf
                     lower-cases keys; docs use camelCase).
  kernel-deadline    Every kernel function in src/skyline/*.cc whose loops
                     perform dominance tests (CompareRows / matrix.Compare /
                     CountTest) must poll DeadlineChecker / CheckInterrupt
                     so queries stay cancellable mid-scan.
  metric-names       Literal instrument names passed to GetCounter /
                     GetGauge / GetHistogram must match the Prometheus
                     metric-name grammar and the `sparkline_` prefix
                     MetricsText() exposes.

Usage:
  tools/sl_lint.py [--root DIR]     lint the tree (exit 1 on findings)
  tools/sl_lint.py --selftest       run the rules against the known-bad
                                    fixtures in tests/lint_fixtures/
"""

import argparse
import os
import re
import sys

RULES = (
    "nodiscard",
    "failpoint-registry",
    "flag-docs",
    "kernel-deadline",
    "metric-names",
)

ALLOW_RE = re.compile(r"sl-lint:\s*allow\(([a-z-]+)\)")


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def _read(path):
    with open(path, encoding="utf-8") as f:
        return f.read()


def _source_files(root, subdir="src", exts=(".cc", ".h")):
    base = os.path.join(root, subdir)
    out = []
    for dirpath, _, names in os.walk(base):
        for name in sorted(names):
            if name.endswith(exts):
                out.append(os.path.join(dirpath, name))
    return out


def _allowed(rule, lines, idx):
    """True when line idx (0-based) or the one above carries a suppression."""
    for i in (idx, idx - 1):
        if 0 <= i < len(lines):
            m = ALLOW_RE.search(lines[i])
            if m and m.group(1) == rule:
                return True
    return False


def _rel(root, path):
    return os.path.relpath(path, root)


# --- rule: nodiscard ---------------------------------------------------------

CLASS_DEF_RE = re.compile(r"^\s*(?:template\s*<[^>]*>\s*)?class\s+"
                          r"(\[\[nodiscard\]\]\s+)?(Status|Result)\b[^;]*$")


def check_nodiscard(root):
    findings = []
    for path in _source_files(root):
        lines = _read(path).splitlines()
        for i, line in enumerate(lines):
            m = CLASS_DEF_RE.match(line)
            if m is None:
                continue
            # A definition opens a brace on this or a following line; a bare
            # `class Status;` forward declaration is filtered by [^;] above.
            if m.group(1) is None and not _allowed("nodiscard", lines, i):
                findings.append(Finding(
                    "nodiscard", _rel(root, path), i + 1,
                    "class %s must be declared [[nodiscard]] — a dropped "
                    "%s silently swallows the error" %
                    (m.group(2), m.group(2))))
    return findings


# --- rule: failpoint-registry ------------------------------------------------

SL_FAILPOINT_RE = re.compile(r'SL_FAILPOINT\("([^"]+)"\)')
FAILPOINT_SITE_RE = re.compile(
    r'failpoint_site\(\)\s*const(?:\s+override)?\s*\{\s*return\s+"([^"]+)"')
KSITES_RE = re.compile(r"kSites\[\]\s*=\s*\{(.*?)\}", re.S)
DOC_TABLE_RE = re.compile(
    r"<!--\s*failpoint-site-table:begin\s*-->(.*?)"
    r"<!--\s*failpoint-site-table:end\s*-->", re.S)
DOC_SITE_RE = re.compile(r"^\|\s*`([^`]+)`", re.M)


def check_failpoint_registry(root):
    findings = []
    code_sites = {}  # site -> (path, line)
    for path in _source_files(root):
        if path.endswith(os.path.join("common", "failpoint.h")):
            continue  # the macro definition itself
        lines = _read(path).splitlines()
        for i, line in enumerate(lines):
            for pat in (SL_FAILPOINT_RE, FAILPOINT_SITE_RE):
                m = pat.search(line)
                if m and not _allowed("failpoint-registry", lines, i):
                    code_sites.setdefault(m.group(1),
                                          (_rel(root, path), i + 1))

    reg_path = os.path.join(root, "src", "common", "failpoint.cc")
    registry = None
    if os.path.exists(reg_path):
        m = KSITES_RE.search(_read(reg_path))
        if m:
            registry = set(re.findall(r'"([^"]+)"', m.group(1)))

    doc_path = os.path.join(root, "docs", "ARCHITECTURE.md")
    doc_sites = None
    if os.path.exists(doc_path):
        m = DOC_TABLE_RE.search(_read(doc_path))
        if m:
            doc_sites = set(DOC_SITE_RE.findall(m.group(1)))
            doc_sites.discard("site")  # header row

    if registry is not None:
        for site, (path, line) in sorted(code_sites.items()):
            if site not in registry:
                findings.append(Finding(
                    "failpoint-registry", path, line,
                    "failpoint site '%s' is not in the kSites registry "
                    "(failpoint.cc) — Arm() would reject it and the chaos "
                    "sweep would never exercise it" % site))
        for site in sorted(registry - set(code_sites)):
            findings.append(Finding(
                "failpoint-registry", _rel(root, reg_path), 1,
                "registered failpoint site '%s' has no SL_FAILPOINT / "
                "failpoint_site() call site — dead registry entry" % site))
    if registry is not None and doc_sites is not None:
        for site in sorted(registry - doc_sites):
            findings.append(Finding(
                "failpoint-registry", _rel(root, doc_path), 1,
                "failpoint site '%s' is registered but missing from the "
                "ARCHITECTURE.md site table" % site))
        for site in sorted(doc_sites - registry):
            findings.append(Finding(
                "failpoint-registry", _rel(root, doc_path), 1,
                "ARCHITECTURE.md documents failpoint site '%s' which is "
                "not in the kSites registry" % site))
    return findings


# --- rule: flag-docs ---------------------------------------------------------

FLAG_READ_RE = re.compile(r'k\s*==\s*"(sparkline\.[^"]+)"')
FLAG_DOC_RE = re.compile(r"^\|\s*`(sparkline\.[^`]+)`", re.M)


def check_flag_docs(root):
    findings = []
    session = os.path.join(root, "src", "api", "session.cc")
    readme = os.path.join(root, "README.md")
    if not (os.path.exists(session) and os.path.exists(readme)):
        return findings
    lines = _read(session).splitlines()
    read_flags = {}  # lower-cased key -> (line, as-written)
    for i, line in enumerate(lines):
        m = FLAG_READ_RE.search(line)
        if m and not _allowed("flag-docs", lines, i):
            read_flags.setdefault(m.group(1).lower(), (i + 1, m.group(1)))
    doc_flags = {f.lower(): f for f in FLAG_DOC_RE.findall(_read(readme))}

    for key, (line, spelled) in sorted(read_flags.items()):
        if key not in doc_flags:
            findings.append(Finding(
                "flag-docs", _rel(root, session), line,
                "flag '%s' is read here but has no row in README.md's "
                "configuration-flag table" % spelled))
    for key in sorted(set(doc_flags) - set(read_flags)):
        findings.append(Finding(
            "flag-docs", _rel(root, readme), 1,
            "README.md documents flag '%s' which session.cc never reads "
            "(stale doc or typo in the key)" % doc_flags[key]))
    return findings


# --- rule: kernel-deadline ---------------------------------------------------

LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
DOM_TEST_RE = re.compile(r"\bCompareRows\s*\(|\.Compare\s*\(|\bCountTest\s*\(")
DEADLINE_RE = re.compile(r"DeadlineChecker|deadline\.Check|CheckInterrupt")
FUNC_START_RE = re.compile(r"^[A-Za-z_].*\(")


def _functions(text):
    """Yields (start_line_0based, body) for column-0 function definitions —
    the tree's style keeps namespace contents unindented, so a function
    starts at column 0 and its closing brace is a lone '}' at column 0."""
    lines = text.splitlines()
    start = None
    for i, line in enumerate(lines):
        if start is None:
            if (FUNC_START_RE.match(line) and "namespace" not in line
                    and not line.startswith(("#", "//"))):
                start = i
        elif line == "}":
            yield start, "\n".join(lines[start:i + 1])
            start = None


def check_kernel_deadline(root):
    findings = []
    base = os.path.join(root, "src", "skyline")
    if not os.path.isdir(base):
        return findings
    for name in sorted(os.listdir(base)):
        if not name.endswith(".cc"):
            continue
        path = os.path.join(base, name)
        for start, body in _functions(_read(path)):
            # Skip the signature: CompareRows's own definition is not a
            # dominance-testing loop.
            _, _, rest = body.partition("\n")
            if not (LOOP_RE.search(rest) and DOM_TEST_RE.search(rest)):
                continue
            if DEADLINE_RE.search(rest):
                continue
            if ALLOW_RE.search(rest) and \
                    "allow(kernel-deadline)" in rest:
                continue
            findings.append(Finding(
                "kernel-deadline", _rel(root, path), start + 1,
                "kernel loop performs dominance tests without polling "
                "DeadlineChecker/CheckInterrupt — timeouts and Cancel() "
                "cannot interrupt it"))
    return findings


# --- rule: metric-names ------------------------------------------------------

METRIC_NAME_RE = re.compile(
    r'Get(?:Counter|Gauge|Histogram)\(\s*"([^"]*)"', re.S)
PROM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def check_metric_names(root):
    findings = []
    for path in _source_files(root):
        if path.endswith((os.path.join("common", "metrics.h"),
                          os.path.join("common", "metrics.cc"))):
            continue  # the registry's own declarations
        text = _read(path)
        lines = text.splitlines()
        for m in METRIC_NAME_RE.finditer(text):
            line_idx = text.count("\n", 0, m.start())
            if _allowed("metric-names", lines, line_idx):
                continue
            name = m.group(1)
            if not PROM_NAME_RE.match(name):
                findings.append(Finding(
                    "metric-names", _rel(root, path), line_idx + 1,
                    "metric name '%s' violates the Prometheus name grammar "
                    "([a-zA-Z_:][a-zA-Z0-9_:]*) — TextExposition() would "
                    "emit an unscrapable series" % name))
            elif not name.startswith("sparkline_"):
                findings.append(Finding(
                    "metric-names", _rel(root, path), line_idx + 1,
                    "metric name '%s' lacks the project's 'sparkline_' "
                    "prefix" % name))
    return findings


# --- driver ------------------------------------------------------------------

CHECKS = {
    "nodiscard": check_nodiscard,
    "failpoint-registry": check_failpoint_registry,
    "flag-docs": check_flag_docs,
    "kernel-deadline": check_kernel_deadline,
    "metric-names": check_metric_names,
}


def run_lint(root):
    findings = []
    for rule in RULES:
        findings.extend(CHECKS[rule](root))
    return findings


def run_selftest(root):
    """Every fixture directory is a miniature repo; expect.txt lists
    `<rule> <min_findings>` lines (or the single word `none`). A fixture
    failing its expectation means the rule went vacuous — the lint could no
    longer catch the regression it exists for."""
    fixtures = os.path.join(root, "tests", "lint_fixtures")
    if not os.path.isdir(fixtures):
        print("selftest: no fixtures at %s" % fixtures, file=sys.stderr)
        return 1
    failures = 0
    cases = 0
    for case in sorted(os.listdir(fixtures)):
        case_dir = os.path.join(fixtures, case)
        expect_path = os.path.join(case_dir, "expect.txt")
        if not os.path.isdir(case_dir) or not os.path.exists(expect_path):
            continue
        cases += 1
        findings = run_lint(case_dir)
        by_rule = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        case_failures = 0
        for spec in _read(expect_path).split("\n"):
            spec = spec.strip()
            if not spec or spec.startswith("#"):
                continue
            if spec == "none":
                if findings:
                    case_failures += 1
                    print("FAIL %s: expected no findings, got:" % case)
                    for f in findings:
                        print("  %s" % f)
                continue
            rule, _, count = spec.partition(" ")
            want = int(count or "1")
            got = by_rule.get(rule, 0)
            if got < want:
                case_failures += 1
                print("FAIL %s: expected >=%d %s finding(s), got %d"
                      % (case, want, rule, got))
        failures += case_failures
        if not case_failures:
            print("ok   %s" % case)
    print("selftest: %d fixture(s), %d failure(s)" % (cases, failures))
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: the lint script's parent)")
    parser.add_argument("--selftest", action="store_true",
                        help="prove each rule is non-vacuous via fixtures")
    args = parser.parse_args()
    root = os.path.abspath(args.root or
                           os.path.join(os.path.dirname(__file__), os.pardir))
    if args.selftest:
        sys.exit(run_selftest(root))
    findings = run_lint(root)
    for f in findings:
        print(f)
    if findings:
        print("sl_lint: %d finding(s)" % len(findings), file=sys.stderr)
        sys.exit(1)
    print("sl_lint: clean")


if __name__ == "__main__":
    main()
