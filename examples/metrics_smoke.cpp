// CI smoke for the serve-tier observability surface: runs a few queries,
// then asserts the Prometheus scrape (Session::MetricsText) is non-empty
// and grammar-valid — every line is either a `# TYPE name kind` comment or
// a `name[{labels}] value` sample. Exits non-zero (SL_CHECK aborts) on any
// violation, so a build whose metrics wiring regressed fails the smoke job.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/dataframe.h"
#include "api/session.h"
#include "common/logging.h"
#include "datagen/datagen.h"

using namespace sparkline;  // NOLINT

namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool IsMetricName(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

bool IsNumber(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

/// `# TYPE <name> counter|gauge|histogram`
void CheckTypeLine(const std::string& line) {
  SL_CHECK(line.rfind("# TYPE ", 0) == 0) << "bad comment line: " << line;
  const std::string rest = line.substr(7);
  const size_t space = rest.find(' ');
  SL_CHECK(space != std::string::npos) << "bad TYPE line: " << line;
  const std::string name = rest.substr(0, space);
  const std::string kind = rest.substr(space + 1);
  SL_CHECK(IsMetricName(name)) << "bad metric name in: " << line;
  SL_CHECK(kind == "counter" || kind == "gauge" || kind == "histogram")
      << "bad metric kind in: " << line;
}

/// `name value` or `name{k="v",...} value`
void CheckSampleLine(const std::string& line) {
  const size_t space = line.rfind(' ');
  SL_CHECK(space != std::string::npos) << "no value in: " << line;
  std::string series = line.substr(0, space);
  SL_CHECK(IsNumber(line.substr(space + 1))) << "bad value in: " << line;
  const size_t brace = series.find('{');
  if (brace != std::string::npos) {
    SL_CHECK(series.back() == '}') << "unterminated labels in: " << line;
    const std::string labels =
        series.substr(brace + 1, series.size() - brace - 2);
    SL_CHECK(!labels.empty()) << "empty label block in: " << line;
    series = series.substr(0, brace);
  }
  SL_CHECK(IsMetricName(series)) << "bad series name in: " << line;
}

}  // namespace

int main() {
  Session session;
  SL_CHECK_OK(session.SetConf("sparkline.executors", "4"));
  SL_CHECK_OK(session.SetConf("sparkline.cache.enabled", "true"));
  SL_CHECK_OK(session.catalog()->RegisterTable(datagen::GeneratePoints(
      "smoke_pts", 500, 3, datagen::PointDistribution::kAntiCorrelated, 5)));

  const char* queries[] = {
      "SELECT id, d0, d1, d2 FROM smoke_pts SKYLINE OF d0 MIN, d1 MIN, d2 MIN",
      // Same query again: must hit the result cache.
      "SELECT id, d0, d1, d2 FROM smoke_pts SKYLINE OF d0 MIN, d1 MIN, d2 MIN",
      "SELECT id, d0, d1 FROM smoke_pts SKYLINE OF d0 MIN, d1 MAX",
  };
  for (const char* sql : queries) {
    auto df = session.Sql(sql);
    SL_CHECK(df.ok()) << df.status().ToString();
    auto result = df->Collect();
    SL_CHECK(result.ok()) << result.status().ToString();
    SL_CHECK(result->num_rows() > 0) << sql;
  }

  const std::string text = session.MetricsText();
  SL_CHECK(!text.empty()) << "MetricsText() returned an empty scrape";

  const std::vector<std::string> lines = SplitLines(text);
  size_t samples = 0;
  for (const std::string& line : lines) {
    if (line[0] == '#') {
      CheckTypeLine(line);
    } else {
      CheckSampleLine(line);
      ++samples;
    }
  }
  SL_CHECK(samples > 0) << "scrape has no samples";

  // The queries above must have left their fingerprints.
  for (const char* needle :
       {"sparkline_cache_hits_total", "sparkline_cache_misses_total",
        "sparkline_stage_us_bucket", "sparkline_stage_us_count"}) {
    SL_CHECK(text.find(needle) != std::string::npos)
        << "scrape is missing " << needle;
  }

  std::printf("metrics smoke OK: %zu lines, %zu samples\n", lines.size(),
              samples);
  return 0;
}
