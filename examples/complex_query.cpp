// The paper's Appendix-E scenario: skylines on top of complex queries with
// joins and aggregates over the MusicBrainz-shaped tables (Listings 11/14),
// plus the skyline-through-join optimization at work.
#include <cinttypes>
#include <cstdio>

#include "api/session.h"
#include "api/dataframe.h"
#include "datagen/datagen.h"

using namespace sparkline;  // NOLINT

int main() {
  Session session;
  SL_CHECK_OK(session.SetConf("sparkline.executors", "3"));

  datagen::MusicBrainzOptions opts;
  opts.num_recordings = 4000;
  auto mb = datagen::GenerateMusicBrainz(opts);
  SL_CHECK_OK(session.catalog()->RegisterTable(mb.recording_complete));
  SL_CHECK_OK(session.catalog()->RegisterTable(mb.recording_incomplete));
  SL_CHECK_OK(session.catalog()->RegisterTable(mb.recording_meta));
  SL_CHECK_OK(session.catalog()->RegisterTable(mb.track));
  std::printf("recordings: %zu, tracks: %zu\n\n",
              mb.recording_complete->num_rows(), mb.track->num_rows());

  // Listing 14: the skyline query over the complete base query.
  const char* skyline_query = R"(
SELECT * FROM (
  SELECT
    r.id,
    ifnull(r.length, 0) AS length,
    r.video,
    ifnull(rm.rating, 0) AS rating,
    ifnull(rm.rating_count, 0) AS rating_count,
    recording_tracks.num_tracks,
    recording_tracks.min_position
  FROM recording_complete r LEFT OUTER JOIN (
    SELECT
      ri.id AS id,
      count(ti.recording) AS num_tracks,
      min(ti.position) AS min_position
    FROM recording_complete ri
    JOIN track ti ON ti.recording = ri.id
    GROUP BY ri.id
  ) recording_tracks USING (id)
  JOIN recording_meta rm USING (id)
) SKYLINE OF COMPLETE
  rating MAX,
  rating_count MAX, length MIN,
  video MAX,
  num_tracks MAX,
  min_position MIN)";

  auto df = session.Sql(skyline_query);
  SL_CHECK(df.ok()) << df.status().ToString();
  auto result = df->Collect();
  SL_CHECK(result.ok()) << result.status().ToString();
  std::printf(
      "Best recordings (well rated, short, on many tracks, early position):\n"
      "%zu skyline recordings of %zu\n%s\n",
      result->num_rows(), mb.recording_complete->num_rows(),
      result->ToString(8).c_str());
  std::printf("metrics: %s\n\n", result->metrics.ToString().c_str());

  // The skyline-through-join rule (section 5.4): recording.id is a declared
  // FK to recording_meta.id, so a skyline over recording-side dimensions
  // moves below the join.
  auto pushdown = session.Sql(
      "SELECT r.length, rm.rating FROM recording_complete r "
      "JOIN recording_meta rm ON r.id = rm.id "
      "SKYLINE OF COMPLETE r.length MIN");
  SL_CHECK(pushdown.ok());
  auto explain = pushdown->Explain();
  SL_CHECK(explain.ok());
  std::printf("Skyline pushed below the non-reductive join:\n%s\n\n",
              explain->optimized.c_str());

  // Performance: integrated vs. rewritten, on the complex query.
  SL_CHECK_OK(session.SetConf("sparkline.skyline.strategy", "reference"));
  auto ref = session.Sql(skyline_query);
  SL_CHECK(ref.ok());
  auto ref_result = ref->Collect();
  SL_CHECK(ref_result.ok());
  SL_CHECK(ref_result->num_rows() == result->num_rows())
      << "reference and integrated skylines disagree";
  std::printf("integrated: %9.2f ms simulated\n",
              result->metrics.simulated_ms);
  std::printf("reference:  %9.2f ms simulated (same %zu rows)\n",
              ref_result->metrics.simulated_ms, ref_result->num_rows());
  return 0;
}
