// Incomplete data and cyclic dominance (paper section 3 + Appendix A).
//
// Demonstrates:
//   1. the three-tuple cycle a < b < c < a on incomplete data,
//   2. that the flawed algorithm of Gulzar et al. [20] returns a wrong
//      skyline while the deferred-deletion algorithm is correct,
//   3. that the engine automatically selects the incomplete algorithm for
//      nullable dimensions (Listing 8) and the COMPLETE keyword overrides it.
#include <cstdio>

#include "api/dataframe.h"
#include "api/session.h"
#include "skyline/algorithms.h"

using namespace sparkline;  // NOLINT
namespace sky = sparkline::skyline;

int main() {
  // --- 1. The cycle, at the algorithm level ---------------------------------
  auto null_v = [] { return Value::Null(DataType::Double()); };
  std::vector<Row> tuples = {
      {Value::Double(1), null_v(), Value::Double(10)},  // a = (1, *, 10)
      {Value::Double(3), Value::Double(2), null_v()},   // b = (3, 2, *)
      {null_v(), Value::Double(5), Value::Double(3)},   // c = (*, 5, 3)
  };
  std::vector<sky::BoundDimension> dims{{0, SkylineGoal::kMin},
                                        {1, SkylineGoal::kMin},
                                        {2, SkylineGoal::kMin}};

  std::printf("a=(1,*,10)  b=(3,2,*)  c=(*,5,3), all dimensions MIN\n");
  auto dom = [&](int i, int j, const char* li, const char* lj) {
    auto d = sky::CompareRows(tuples[i], tuples[j], dims,
                              sky::NullSemantics::kIncomplete);
    std::printf("  %s dominates %s? %s\n", li, lj,
                d == sky::Dominance::kLeftDominates ? "yes" : "no");
  };
  dom(0, 1, "a", "b");
  dom(1, 2, "b", "c");
  dom(2, 0, "c", "a");
  std::printf("-> cyclic dominance; transitivity is lost.\n\n");

  // --- 2. Flawed vs. correct global algorithm ------------------------------
  auto flawed = sky::FlawedGulzarGlobal(tuples, dims);
  sky::SkylineOptions opts;
  opts.nulls = sky::NullSemantics::kIncomplete;
  auto correct = sky::AllPairsIncomplete(tuples, dims, opts);
  SL_CHECK(correct.ok());
  std::printf("Gulzar et al. [20] (eager deletion): %zu tuple(s) -- WRONG\n",
              flawed.size());
  for (const auto& r : flawed) std::printf("  leaked: %s\n", RowToString(r).c_str());
  std::printf("deferred deletion (this system):     %zu tuple(s) -- correct\n\n",
              correct->size());

  // --- 3. Algorithm selection in the engine --------------------------------
  Session session;
  Schema schema({Field{"id", DataType::Int64(), false},
                 Field{"d1", DataType::Double(), true},
                 Field{"d2", DataType::Double(), true},
                 Field{"d3", DataType::Double(), true}});
  auto table = std::make_shared<Table>("t", schema);
  for (size_t i = 0; i < tuples.size(); ++i) {
    Row row{Value::Int64(static_cast<int64_t>(i))};
    for (const auto& v : tuples[i]) row.push_back(v);
    SL_CHECK_OK(table->AppendRow(std::move(row)));
  }
  SL_CHECK_OK(session.catalog()->RegisterTable(table));

  auto df = session.Sql(
      "SELECT * FROM t SKYLINE OF d1 MIN, d2 MIN, d3 MIN");
  SL_CHECK(df.ok());
  auto explain = df->Explain();
  SL_CHECK(explain.ok());
  std::printf("Physical plan for nullable dimensions (auto selection):\n%s\n\n",
              explain->physical.c_str());
  auto result = df->Collect();
  SL_CHECK(result.ok());
  std::printf("engine skyline of the cycle: %zu rows (expected 0)\n\n",
              result->num_rows());
  SL_CHECK(result->num_rows() == 0);

  // COMPLETE forces the complete algorithm (the user's override, section
  // 5.5); on this *incomplete* data it would give a different answer, which
  // is exactly why the override exists for data that is known complete.
  auto forced = session.Sql(
      "SELECT * FROM t SKYLINE OF COMPLETE d1 MIN, d2 MIN, d3 MIN");
  SL_CHECK(forced.ok());
  auto fe = forced->Explain();
  SL_CHECK(fe.ok());
  std::printf("Physical plan with the COMPLETE keyword:\n%s\n",
              fe->physical.c_str());
  return 0;
}
