// Quickstart: the paper's running example (Figure 1 / Listing 2).
//
// Builds a small hotel table, then computes the skyline of (price MIN,
// user_rating MAX) three ways:
//   1. the native SKYLINE OF syntax,
//   2. the DataFrame API with smin()/smax(),
//   3. the plain-SQL NOT EXISTS rewriting (Listing 1),
// and shows that all three agree.
#include <cstdio>

#include "api/dataframe.h"
#include "api/session.h"

using namespace sparkline;  // NOLINT

namespace {

TablePtr MakeHotels() {
  Schema schema({
      Field{"name", DataType::String(), false},
      Field{"price", DataType::Double(), false},
      Field{"user_rating", DataType::Double(), false},
  });
  auto hotels = std::make_shared<Table>("hotels", schema);
  const std::vector<std::tuple<const char*, double, double>> rows = {
      {"Seaside Grand", 280, 4.9}, {"Harbor View", 140, 4.4},
      {"City Nest", 95, 3.9},      {"Budget Inn", 55, 3.1},
      {"Old Mill", 120, 4.4},      {"Pier Hotel", 180, 4.6},
      {"Hill Lodge", 75, 3.6},     {"Grey Gables", 99, 3.2},
      {"Sunset Court", 130, 4.1},  {"Backpacker Hub", 42, 2.8},
      {"Royal Astoria", 320, 4.7}, {"Canal House", 110, 4.0},
  };
  for (const auto& [name, price, rating] : rows) {
    SL_CHECK_OK(hotels->AppendRow({Value::String(name), Value::Double(price),
                                   Value::Double(rating)}));
  }
  return hotels;
}

}  // namespace

int main() {
  Session session;
  SL_CHECK_OK(session.catalog()->RegisterTable(MakeHotels()));

  // 1. The native skyline syntax (paper Listing 2).
  auto df = session.Sql(
      "SELECT name, price, user_rating FROM hotels "
      "SKYLINE OF price MIN, user_rating MAX "
      "ORDER BY price");
  SL_CHECK(df.ok()) << df.status().ToString();
  auto result = df->Collect();
  SL_CHECK(result.ok()) << result.status().ToString();
  std::printf("Skyline via SKYLINE OF (Listing 2):\n%s\n",
              result->ToString().c_str());

  auto explain = df->Explain();
  SL_CHECK(explain.ok()) << explain.status().ToString();
  std::printf("%s\n", explain->ToString().c_str());

  // 2. The DataFrame API (paper section 5.8).
  auto table = session.Table("hotels");
  SL_CHECK(table.ok());
  auto df2 = table->Skyline({smin(col("price")), smax(col("user_rating"))});
  SL_CHECK(df2.ok()) << df2.status().ToString();
  auto result2 = df2->Collect();
  SL_CHECK(result2.ok()) << result2.status().ToString();
  std::printf("Skyline via DataFrame API:\n%s\n", result2->ToString().c_str());

  // 3. The plain-SQL rewriting (paper Listing 1) — same rows, slower plan.
  auto reference = session.Sql(
      "SELECT name, price, user_rating FROM hotels AS o WHERE NOT EXISTS("
      "  SELECT * FROM hotels AS i WHERE"
      "    i.price <= o.price AND i.user_rating >= o.user_rating"
      "    AND (i.price < o.price OR i.user_rating > o.user_rating))"
      " ORDER BY price");
  SL_CHECK(reference.ok()) << reference.status().ToString();
  auto result3 = reference->Collect();
  SL_CHECK(result3.ok()) << result3.status().ToString();
  std::printf("Skyline via NOT EXISTS rewriting (Listing 1):\n%s\n",
              result3->ToString().c_str());

  SL_CHECK(result->num_rows() == result3->num_rows())
      << "integrated and reference skylines disagree";
  std::printf("All three formulations agree on %zu skyline hotels.\n",
              result->num_rows());
  std::printf("Metrics (native): %s\n", result->metrics.ToString().c_str());
  return 0;
}
