// Skyline analysis on the DSB store_sales-shaped fact table (paper
// section 6.2, Table 2): skylines over filtered/aggregated inputs, the
// single-dimension optimization, and the cost of the plain-SQL rewriting.
#include <cinttypes>
#include <cstdio>

#include "api/dataframe.h"
#include "api/session.h"
#include "datagen/datagen.h"

using namespace sparkline;  // NOLINT

int main() {
  Session session;
  SL_CHECK_OK(session.SetConf("sparkline.executors", "4"));

  datagen::StoreSalesOptions opts;
  opts.num_rows = 20000;
  auto sales = datagen::GenerateStoreSales(opts);
  SL_CHECK_OK(session.catalog()->RegisterTable(sales));
  std::printf("store_sales: %zu rows\n\n", sales->num_rows());

  // Best trade-offs between quantity and wholesale cost.
  auto df = session.Sql(
      "SELECT ss_item_sk, ss_quantity, ss_wholesale_cost, ss_list_price "
      "FROM store_sales "
      "SKYLINE OF ss_quantity MAX, ss_wholesale_cost MIN "
      "ORDER BY ss_quantity DESC LIMIT 10");
  SL_CHECK(df.ok()) << df.status().ToString();
  auto result = df->Collect();
  SL_CHECK(result.ok());
  std::printf("Quantity-vs-cost skyline (top 10 by quantity):\n%s\n",
              result->ToString(10).c_str());

  // Skyline over a *derived* relation: per-item aggregates.
  auto agg = session.Sql(
      "SELECT ss_item_sk, count(*) AS sales, avg(ss_sales_price) AS avg_price,"
      " max(ss_ext_discount_amt) AS best_discount "
      "FROM store_sales GROUP BY ss_item_sk "
      "SKYLINE OF sales MAX, avg_price MIN, best_discount MAX");
  SL_CHECK(agg.ok()) << agg.status().ToString();
  auto agg_result = agg->Collect();
  SL_CHECK(agg_result.ok());
  std::printf("Skyline over per-item aggregates: %zu items\n%s\n",
              agg_result->num_rows(), agg_result->ToString(8).c_str());

  // The single-dimension optimization (section 5.4): the skyline disappears
  // from the plan in favour of a scalar subquery filter.
  auto single = session.Sql(
      "SELECT * FROM store_sales SKYLINE OF ss_wholesale_cost MIN");
  SL_CHECK(single.ok());
  auto explain = single->Explain();
  SL_CHECK(explain.ok());
  std::printf("Optimized plan for a 1-dimensional skyline:\n%s\n\n",
              explain->optimized.c_str());
  auto single_result = single->Collect();
  SL_CHECK(single_result.ok());
  std::printf("cheapest-wholesale tuples: %zu\n\n", single_result->num_rows());

  // Integrated skyline vs. the plain-SQL rewriting on the same 3-dim query.
  const char* query =
      "SELECT ss_item_sk, ss_quantity, ss_wholesale_cost, ss_list_price "
      "FROM store_sales SKYLINE OF ss_quantity MAX, ss_wholesale_cost MIN, "
      "ss_list_price MIN";
  for (const char* strategy : {"distributed", "reference"}) {
    SL_CHECK_OK(session.SetConf("sparkline.skyline.strategy", strategy));
    auto run = session.Sql(query);
    SL_CHECK(run.ok());
    auto r = run->Collect();
    SL_CHECK(r.ok());
    std::printf(
        "%-12s: %4zu rows, %9.2f ms simulated, %" PRId64 " dominance tests\n",
        strategy, r->num_rows(), r->metrics.simulated_ms,
        r->metrics.dominance_tests);
  }
  std::printf(
      "\nThe integrated skyline outperforms the rewriting by avoiding the\n"
      "quadratic anti-join (the paper's headline result, section 6.4).\n");
  return 0;
}
