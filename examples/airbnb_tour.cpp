// A tour of skyline queries on the Inside-Airbnb-shaped dataset (paper
// section 6.2, Table 1): complete vs. incomplete data, growing dimension
// counts, algorithm strategies, and CSV as an interchangeable data source.
#include <cinttypes>
#include <cstdio>

#include "api/dataframe.h"
#include "api/session.h"
#include "common/string_util.h"
#include "datagen/csv.h"
#include "datagen/datagen.h"

using namespace sparkline;  // NOLINT

namespace {

// The six skyline dimensions of paper Table 1, in order.
const char* kDimensions[6] = {
    "price MIN",             "accommodates MAX", "bedrooms MAX",
    "beds MAX",              "number_of_reviews MAX",
    "review_scores_rating MAX"};

std::string SkylineQuery(const std::string& table, int dims, bool complete) {
  std::vector<std::string> items;
  for (int d = 0; d < dims; ++d) items.push_back(kDimensions[d]);
  return StrCat("SELECT * FROM ", table, " SKYLINE OF ",
                complete ? "COMPLETE " : "", JoinStrings(items, ", "));
}

}  // namespace

int main() {
  Session session;
  SL_CHECK_OK(session.SetConf("sparkline.executors", "4"));

  // The paper's construction: one incomplete dataset; the complete variant
  // keeps only rows without nulls in any skyline dimension.
  datagen::AirbnbOptions opts;
  opts.num_rows = 8000;
  opts.incomplete = true;
  opts.table_name = "listings_incomplete";
  auto incomplete = datagen::GenerateAirbnb(opts);
  auto complete = datagen::CompleteSubset(*incomplete, "listings");
  SL_CHECK_OK(session.catalog()->RegisterTable(incomplete));
  SL_CHECK_OK(session.catalog()->RegisterTable(complete));
  std::printf("listings: %zu complete rows of %zu total (%.0f%%)\n\n",
              complete->num_rows(), incomplete->num_rows(),
              100.0 * complete->num_rows() / incomplete->num_rows());

  // Skyline sizes as dimensions grow (the effect discussed in section 6.4).
  std::printf("%-4s %-18s %-18s\n", "dims", "skyline(complete)",
              "skyline(incomplete)");
  for (int dims = 1; dims <= 6; ++dims) {
    auto complete_df = session.Sql(SkylineQuery("listings", dims, true));
    SL_CHECK(complete_df.ok()) << complete_df.status().ToString();
    auto complete_result = complete_df->Collect();
    SL_CHECK(complete_result.ok());

    auto incomplete_df =
        session.Sql(SkylineQuery("listings_incomplete", dims, false));
    SL_CHECK(incomplete_df.ok());
    auto incomplete_result = incomplete_df->Collect();
    SL_CHECK(incomplete_result.ok());

    std::printf("%-4d %-18zu %-18zu\n", dims, complete_result->num_rows(),
                incomplete_result->num_rows());
  }

  // The best 6-dimensional listings, via the DataFrame API.
  auto table = session.Table("listings");
  SL_CHECK(table.ok());
  auto sky = table->Skyline(
      {smin(col("price")), smax(col("accommodates")), smax(col("bedrooms")),
       smax(col("beds")), smax(col("number_of_reviews")),
       smax(col("review_scores_rating"))},
      /*distinct=*/false, /*complete=*/true);
  SL_CHECK(sky.ok());
  auto ordered = sky->OrderBy({col("price").Asc()});
  SL_CHECK(ordered.ok());
  auto top = ordered->Limit(8);
  SL_CHECK(top.ok());
  auto best = top->Collect();
  SL_CHECK(best.ok());
  std::printf("\nBest listings (6-dimensional skyline, cheapest first):\n%s\n",
              best->ToString().c_str());

  // The algorithm strategies of section 6.3 produce identical results.
  const std::string q = SkylineQuery("listings", 4, true);
  size_t expected = 0;
  for (const char* strategy :
       {"auto", "distributed", "non_distributed", "incomplete", "reference"}) {
    SL_CHECK_OK(session.SetConf("sparkline.skyline.strategy", strategy));
    auto df = session.Sql(q);
    SL_CHECK(df.ok());
    auto result = df->Collect();
    SL_CHECK(result.ok()) << result.status().ToString();
    if (expected == 0) expected = result->num_rows();
    SL_CHECK(result->num_rows() == expected) << strategy << " disagrees";
    std::printf("strategy %-16s -> %4zu rows, %8.2f ms simulated, %" PRId64
                " dominance tests\n",
                strategy, result->num_rows(), result->metrics.simulated_ms,
                result->metrics.dominance_tests);
  }
  SL_CHECK_OK(session.SetConf("sparkline.skyline.strategy", "auto"));

  // Data-source independence: round-trip through CSV and query again.
  const std::string path = "/tmp/sparkline_listings.csv";
  SL_CHECK_OK(datagen::WriteCsv(*complete, path));
  auto reloaded = datagen::ReadCsv(path, complete->schema(), "listings_csv");
  SL_CHECK(reloaded.ok());
  SL_CHECK_OK(session.catalog()->RegisterTable(*reloaded));
  auto from_csv = session.Sql(SkylineQuery("listings_csv", 4, true));
  SL_CHECK(from_csv.ok());
  auto csv_result = from_csv->Collect();
  SL_CHECK(csv_result.ok());
  SL_CHECK(csv_result->num_rows() == expected);
  std::printf("\nCSV round-trip: %zu rows -> same %zu skyline listings.\n",
              (*reloaded)->num_rows(), csv_result->num_rows());
  return 0;
}
