# Empty dependencies file for matrix_equivalence_test.
# This may be replaced when dependencies are built.
