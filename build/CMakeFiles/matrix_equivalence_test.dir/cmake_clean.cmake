file(REMOVE_RECURSE
  "CMakeFiles/matrix_equivalence_test.dir/tests/matrix_equivalence_test.cc.o"
  "CMakeFiles/matrix_equivalence_test.dir/tests/matrix_equivalence_test.cc.o.d"
  "matrix_equivalence_test"
  "matrix_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
