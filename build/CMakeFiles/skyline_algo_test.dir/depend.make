# Empty dependencies file for skyline_algo_test.
# This may be replaced when dependencies are built.
