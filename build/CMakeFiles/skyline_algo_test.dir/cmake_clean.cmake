file(REMOVE_RECURSE
  "CMakeFiles/skyline_algo_test.dir/tests/skyline_algo_test.cc.o"
  "CMakeFiles/skyline_algo_test.dir/tests/skyline_algo_test.cc.o.d"
  "skyline_algo_test"
  "skyline_algo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyline_algo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
