# Empty dependencies file for fig8_10_memory.
# This may be replaced when dependencies are built.
