file(REMOVE_RECURSE
  "CMakeFiles/fig8_10_memory.dir/bench/fig8_10_memory.cc.o"
  "CMakeFiles/fig8_10_memory.dir/bench/fig8_10_memory.cc.o.d"
  "fig8_10_memory"
  "fig8_10_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_10_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
