# Empty dependencies file for fig3_airbnb_dims.
# This may be replaced when dependencies are built.
