file(REMOVE_RECURSE
  "CMakeFiles/fig3_airbnb_dims.dir/bench/fig3_airbnb_dims.cc.o"
  "CMakeFiles/fig3_airbnb_dims.dir/bench/fig3_airbnb_dims.cc.o.d"
  "fig3_airbnb_dims"
  "fig3_airbnb_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_airbnb_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
