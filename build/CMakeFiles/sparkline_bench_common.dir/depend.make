# Empty dependencies file for sparkline_bench_common.
# This may be replaced when dependencies are built.
