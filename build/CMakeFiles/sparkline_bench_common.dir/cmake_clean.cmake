file(REMOVE_RECURSE
  "CMakeFiles/sparkline_bench_common.dir/bench/bench_common.cc.o"
  "CMakeFiles/sparkline_bench_common.dir/bench/bench_common.cc.o.d"
  "libsparkline_bench_common.a"
  "libsparkline_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkline_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
