file(REMOVE_RECURSE
  "libsparkline_bench_common.a"
)
