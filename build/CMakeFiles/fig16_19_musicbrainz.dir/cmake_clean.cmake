file(REMOVE_RECURSE
  "CMakeFiles/fig16_19_musicbrainz.dir/bench/fig16_19_musicbrainz.cc.o"
  "CMakeFiles/fig16_19_musicbrainz.dir/bench/fig16_19_musicbrainz.cc.o.d"
  "fig16_19_musicbrainz"
  "fig16_19_musicbrainz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_19_musicbrainz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
