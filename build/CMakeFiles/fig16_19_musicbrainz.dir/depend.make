# Empty dependencies file for fig16_19_musicbrainz.
# This may be replaced when dependencies are built.
