file(REMOVE_RECURSE
  "CMakeFiles/fig5_store_tuples.dir/bench/fig5_store_tuples.cc.o"
  "CMakeFiles/fig5_store_tuples.dir/bench/fig5_store_tuples.cc.o.d"
  "fig5_store_tuples"
  "fig5_store_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_store_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
