# Empty dependencies file for fig5_store_tuples.
# This may be replaced when dependencies are built.
