# Empty dependencies file for fig6_airbnb_execs.
# This may be replaced when dependencies are built.
