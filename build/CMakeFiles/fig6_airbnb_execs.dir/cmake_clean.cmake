file(REMOVE_RECURSE
  "CMakeFiles/fig6_airbnb_execs.dir/bench/fig6_airbnb_execs.cc.o"
  "CMakeFiles/fig6_airbnb_execs.dir/bench/fig6_airbnb_execs.cc.o.d"
  "fig6_airbnb_execs"
  "fig6_airbnb_execs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_airbnb_execs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
