file(REMOVE_RECURSE
  "CMakeFiles/micro_skyline.dir/bench/micro_skyline.cc.o"
  "CMakeFiles/micro_skyline.dir/bench/micro_skyline.cc.o.d"
  "micro_skyline"
  "micro_skyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_skyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
