# Empty dependencies file for micro_skyline.
# This may be replaced when dependencies are built.
