file(REMOVE_RECURSE
  "libsparkline.a"
)
