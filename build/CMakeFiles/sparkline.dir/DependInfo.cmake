
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyzer.cc" "CMakeFiles/sparkline.dir/src/analysis/analyzer.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/analysis/analyzer.cc.o.d"
  "/root/repo/src/analysis/subquery_rewrite.cc" "CMakeFiles/sparkline.dir/src/analysis/subquery_rewrite.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/analysis/subquery_rewrite.cc.o.d"
  "/root/repo/src/analysis/validation.cc" "CMakeFiles/sparkline.dir/src/analysis/validation.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/analysis/validation.cc.o.d"
  "/root/repo/src/api/dataframe.cc" "CMakeFiles/sparkline.dir/src/api/dataframe.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/api/dataframe.cc.o.d"
  "/root/repo/src/api/query_result.cc" "CMakeFiles/sparkline.dir/src/api/query_result.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/api/query_result.cc.o.d"
  "/root/repo/src/api/session.cc" "CMakeFiles/sparkline.dir/src/api/session.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/api/session.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "CMakeFiles/sparkline.dir/src/catalog/catalog.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/table.cc" "CMakeFiles/sparkline.dir/src/catalog/table.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/catalog/table.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/sparkline.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/sparkline.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/string_util.cc" "CMakeFiles/sparkline.dir/src/common/string_util.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/sparkline.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/datagen/airbnb.cc" "CMakeFiles/sparkline.dir/src/datagen/airbnb.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/datagen/airbnb.cc.o.d"
  "/root/repo/src/datagen/csv.cc" "CMakeFiles/sparkline.dir/src/datagen/csv.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/datagen/csv.cc.o.d"
  "/root/repo/src/datagen/musicbrainz.cc" "CMakeFiles/sparkline.dir/src/datagen/musicbrainz.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/datagen/musicbrainz.cc.o.d"
  "/root/repo/src/datagen/store_sales.cc" "CMakeFiles/sparkline.dir/src/datagen/store_sales.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/datagen/store_sales.cc.o.d"
  "/root/repo/src/exec/aggregate_op.cc" "CMakeFiles/sparkline.dir/src/exec/aggregate_op.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/exec/aggregate_op.cc.o.d"
  "/root/repo/src/exec/join_ops.cc" "CMakeFiles/sparkline.dir/src/exec/join_ops.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/exec/join_ops.cc.o.d"
  "/root/repo/src/exec/physical_plan.cc" "CMakeFiles/sparkline.dir/src/exec/physical_plan.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/exec/physical_plan.cc.o.d"
  "/root/repo/src/exec/planner.cc" "CMakeFiles/sparkline.dir/src/exec/planner.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/exec/planner.cc.o.d"
  "/root/repo/src/exec/skyline_ops.cc" "CMakeFiles/sparkline.dir/src/exec/skyline_ops.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/exec/skyline_ops.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "CMakeFiles/sparkline.dir/src/expr/evaluator.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/expr/evaluator.cc.o.d"
  "/root/repo/src/expr/expression.cc" "CMakeFiles/sparkline.dir/src/expr/expression.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/expr/expression.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "CMakeFiles/sparkline.dir/src/optimizer/optimizer.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/rules.cc" "CMakeFiles/sparkline.dir/src/optimizer/rules.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/optimizer/rules.cc.o.d"
  "/root/repo/src/optimizer/skyline_rules.cc" "CMakeFiles/sparkline.dir/src/optimizer/skyline_rules.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/optimizer/skyline_rules.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "CMakeFiles/sparkline.dir/src/plan/logical_plan.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/plan/logical_plan.cc.o.d"
  "/root/repo/src/plan/plan_clone.cc" "CMakeFiles/sparkline.dir/src/plan/plan_clone.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/plan/plan_clone.cc.o.d"
  "/root/repo/src/skyline/algorithms.cc" "CMakeFiles/sparkline.dir/src/skyline/algorithms.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/skyline/algorithms.cc.o.d"
  "/root/repo/src/skyline/columnar.cc" "CMakeFiles/sparkline.dir/src/skyline/columnar.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/skyline/columnar.cc.o.d"
  "/root/repo/src/skyline/dominance.cc" "CMakeFiles/sparkline.dir/src/skyline/dominance.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/skyline/dominance.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "CMakeFiles/sparkline.dir/src/sql/lexer.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "CMakeFiles/sparkline.dir/src/sql/parser.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/sql/parser.cc.o.d"
  "/root/repo/src/types/schema.cc" "CMakeFiles/sparkline.dir/src/types/schema.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/types/schema.cc.o.d"
  "/root/repo/src/types/value.cc" "CMakeFiles/sparkline.dir/src/types/value.cc.o" "gcc" "CMakeFiles/sparkline.dir/src/types/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
