# Empty dependencies file for sparkline.
# This may be replaced when dependencies are built.
