file(REMOVE_RECURSE
  "CMakeFiles/example_complex_query.dir/examples/complex_query.cpp.o"
  "CMakeFiles/example_complex_query.dir/examples/complex_query.cpp.o.d"
  "example_complex_query"
  "example_complex_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_complex_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
