# Empty dependencies file for example_complex_query.
# This may be replaced when dependencies are built.
