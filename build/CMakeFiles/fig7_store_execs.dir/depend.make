# Empty dependencies file for fig7_store_execs.
# This may be replaced when dependencies are built.
