file(REMOVE_RECURSE
  "CMakeFiles/fig7_store_execs.dir/bench/fig7_store_execs.cc.o"
  "CMakeFiles/fig7_store_execs.dir/bench/fig7_store_execs.cc.o.d"
  "fig7_store_execs"
  "fig7_store_execs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_store_execs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
