file(REMOVE_RECURSE
  "CMakeFiles/example_incomplete_data.dir/examples/incomplete_data.cpp.o"
  "CMakeFiles/example_incomplete_data.dir/examples/incomplete_data.cpp.o.d"
  "example_incomplete_data"
  "example_incomplete_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_incomplete_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
