# Empty dependencies file for example_incomplete_data.
# This may be replaced when dependencies are built.
