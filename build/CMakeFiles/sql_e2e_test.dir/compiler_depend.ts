# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sql_e2e_test.
