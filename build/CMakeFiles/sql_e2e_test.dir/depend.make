# Empty dependencies file for sql_e2e_test.
# This may be replaced when dependencies are built.
