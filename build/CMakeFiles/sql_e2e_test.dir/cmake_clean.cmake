file(REMOVE_RECURSE
  "CMakeFiles/sql_e2e_test.dir/tests/sql_e2e_test.cc.o"
  "CMakeFiles/sql_e2e_test.dir/tests/sql_e2e_test.cc.o.d"
  "sql_e2e_test"
  "sql_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
