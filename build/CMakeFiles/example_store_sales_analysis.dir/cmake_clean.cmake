file(REMOVE_RECURSE
  "CMakeFiles/example_store_sales_analysis.dir/examples/store_sales_analysis.cpp.o"
  "CMakeFiles/example_store_sales_analysis.dir/examples/store_sales_analysis.cpp.o.d"
  "example_store_sales_analysis"
  "example_store_sales_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_store_sales_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
