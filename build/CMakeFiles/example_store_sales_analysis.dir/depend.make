# Empty dependencies file for example_store_sales_analysis.
# This may be replaced when dependencies are built.
