# Empty dependencies file for fig4_store_dims.
# This may be replaced when dependencies are built.
