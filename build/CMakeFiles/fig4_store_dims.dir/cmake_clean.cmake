file(REMOVE_RECURSE
  "CMakeFiles/fig4_store_dims.dir/bench/fig4_store_dims.cc.o"
  "CMakeFiles/fig4_store_dims.dir/bench/fig4_store_dims.cc.o.d"
  "fig4_store_dims"
  "fig4_store_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_store_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
