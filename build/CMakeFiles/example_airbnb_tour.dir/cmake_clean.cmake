file(REMOVE_RECURSE
  "CMakeFiles/example_airbnb_tour.dir/examples/airbnb_tour.cpp.o"
  "CMakeFiles/example_airbnb_tour.dir/examples/airbnb_tour.cpp.o.d"
  "example_airbnb_tour"
  "example_airbnb_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_airbnb_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
