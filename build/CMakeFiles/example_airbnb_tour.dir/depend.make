# Empty dependencies file for example_airbnb_tour.
# This may be replaced when dependencies are built.
